// Hermitian eigendecomposition via the cyclic complex Jacobi method.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace roarray::linalg {

/// Eigendecomposition A = V diag(lambda) V^H of a Hermitian matrix.
/// Eigenvalues are real and sorted ascending; eigenvector k is V.col(k).
struct EigResult {
  RVec eigenvalues;   ///< ascending, real (Hermitian input).
  CMat eigenvectors;  ///< unitary; column k pairs with eigenvalues[k].
};

/// Computes all eigenvalues and eigenvectors of a Hermitian matrix with
/// the cyclic complex Jacobi method. The input must be Hermitian to
/// within hermitian_tol * ||A||_max (throws std::invalid_argument
/// otherwise); the strictly-lower triangle is then ignored.
///
/// Robust and simple; O(n^3) per sweep with a handful of sweeps, which
/// is ideal for the <=128-dimensional covariance matrices used by MUSIC.
[[nodiscard]] EigResult eig_hermitian(const CMat& a,
                                      double tol = kDefaultTol,
                                      double hermitian_tol = 1e-8);

}  // namespace roarray::linalg
