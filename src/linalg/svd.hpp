// Singular value decomposition for complex matrices.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace roarray::linalg {

/// Thin SVD A = U diag(sigma) V^H with r = min(rows, cols) columns.
/// Singular values are sorted descending.
struct SvdResult {
  CMat u;                  ///< rows x r, orthonormal columns.
  RVec singular_values;    ///< length r, descending, >= 0.
  CMat v;                  ///< cols x r, orthonormal columns.

  /// Numerical rank at relative tolerance tol (default kRankTol).
  [[nodiscard]] index_t rank(double tol = kRankTol) const;
};

/// Computes the thin SVD via a Hermitian eigendecomposition of the
/// smaller Gram matrix (A^H A or A A^H). Accurate to ~sqrt(machine eps)
/// for small singular values, which is ample for the subspace/fusion
/// uses in this library (dominant-subspace extraction).
[[nodiscard]] SvdResult svd(const CMat& a);

}  // namespace roarray::linalg
