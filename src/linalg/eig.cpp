#include "linalg/eig.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace roarray::linalg {

namespace {

/// Sum of squared magnitudes of strictly-upper-triangular elements.
double off_diagonal_sq(const CMat& a) {
  double acc = 0.0;
  for (index_t j = 1; j < a.cols(); ++j)
    for (index_t i = 0; i < j; ++i) acc += std::norm(a(i, j));
  return acc;
}

}  // namespace

EigResult eig_hermitian(const CMat& input, double tol, double hermitian_tol) {
  if (input.rows() != input.cols()) {
    throw std::invalid_argument("eig_hermitian: matrix must be square");
  }
  const index_t n = input.rows();
  const double scale = std::max(1.0, norm_max(input));
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < j; ++i) {
      if (std::abs(input(i, j) - std::conj(input(j, i))) > hermitian_tol * scale) {
        throw std::invalid_argument("eig_hermitian: matrix is not Hermitian");
      }
    }
  }

  // Work on a symmetrized copy so the iteration sees an exactly
  // Hermitian matrix regardless of rounding in the input.
  CMat a(n, n);
  for (index_t j = 0; j < n; ++j) {
    a(j, j) = cxd{input(j, j).real(), 0.0};
    for (index_t i = 0; i < j; ++i) {
      const cxd v = 0.5 * (input(i, j) + std::conj(input(j, i)));
      a(i, j) = v;
      a(j, i) = std::conj(v);
    }
  }
  CMat v = CMat::identity(n);

  const double fro = norm_fro(a);
  const double stop = std::max(tol * fro, 1e-300);
  constexpr int kMaxSweeps = 64;

  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    if (std::sqrt(off_diagonal_sq(a)) <= stop) break;
    for (index_t p = 0; p < n - 1; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        const cxd apq = a(p, q);
        const double r = std::abs(apq);
        if (r <= stop / static_cast<double>(n)) continue;

        // Phase factor turning the 2x2 block real-symmetric:
        // with u = apq / |apq|, the transformed off-diagonal is |apq|.
        const cxd u = apq / r;
        const double app = a(p, p).real();
        const double aqq = a(q, q).real();

        // Real Jacobi rotation annihilating the (p,q) entry of
        // [[app, r], [r, aqq]] (Golub & Van Loan 8.4).
        const double theta = (aqq - app) / (2.0 * r);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = c * t;

        // Combined complex rotation G: G(p,p)=c, G(p,q)=s*u,
        // G(q,p)=-s*conj(u), G(q,q)=c. Update A <- G^H A G, V <- V G.
        const cxd gpq = s * u;         // G(p,q)
        const cxd gqp = -s * std::conj(u);  // G(q,p)

        // Columns: A <- A G touches columns p and q.
        for (index_t i = 0; i < n; ++i) {
          const cxd aip = a(i, p);
          const cxd aiq = a(i, q);
          a(i, p) = aip * c + aiq * gqp;
          a(i, q) = aip * gpq + aiq * c;
        }
        // Rows: A <- G^H A touches rows p and q.
        for (index_t j = 0; j < n; ++j) {
          const cxd apj = a(p, j);
          const cxd aqj = a(q, j);
          a(p, j) = c * apj + std::conj(gqp) * aqj;
          a(q, j) = std::conj(gpq) * apj + c * aqj;
        }
        // Clean up rounding on the annihilated pair and diagonal.
        a(p, q) = cxd{};
        a(q, p) = cxd{};
        a(p, p) = cxd{a(p, p).real(), 0.0};
        a(q, q) = cxd{a(q, q).real(), 0.0};

        // Accumulate eigenvectors: V <- V G.
        for (index_t i = 0; i < n; ++i) {
          const cxd vip = v(i, p);
          const cxd viq = v(i, q);
          v(i, p) = vip * c + viq * gqp;
          v(i, q) = vip * gpq + viq * c;
        }
      }
    }
  }

  // Sort ascending by eigenvalue.
  std::vector<index_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), index_t{0});
  std::sort(order.begin(), order.end(), [&](index_t x, index_t y) {
    return a(x, x).real() < a(y, y).real();
  });

  EigResult out;
  out.eigenvalues = RVec(n);
  out.eigenvectors = CMat(n, n);
  for (index_t k = 0; k < n; ++k) {
    const index_t src = order[static_cast<std::size_t>(k)];
    out.eigenvalues[k] = a(src, src).real();
    for (index_t i = 0; i < n; ++i) out.eigenvectors(i, k) = v(i, src);
  }
  return out;
}

}  // namespace roarray::linalg
