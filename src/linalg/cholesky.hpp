// Cholesky factorization for Hermitian positive-definite matrices.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace roarray::linalg {

/// Computes the lower-triangular factor L with A = L L^H.
/// Throws std::domain_error if A is not (numerically) positive definite.
[[nodiscard]] CMat cholesky(const CMat& a);

/// Solves A x = b given the Cholesky factor L of A (forward then
/// backward substitution).
[[nodiscard]] CVec cholesky_solve(const CMat& l, const CVec& b);

}  // namespace roarray::linalg
