// Proximal-gradient solvers (ISTA / FISTA) for the paper's Lagrangian
// sparse-recovery objective (Eq. 11 / Eq. 18):
//
//     min_x  1/2 ||y - S x||_2^2 + kappa ||x||_1
//
// and its multi-snapshot (l2,1 / l1-SVD) generalization
//
//     min_X  1/2 ||Y - S X||_F^2 + kappa sum_i ||X(i,:)||_2.
//
// The paper solves the constrained SOCP form with CVX; the Lagrangian
// proximal form has identical minimizers (see DESIGN.md) and maps the
// "iteration progress" of the paper's Fig. 3 onto solver iterations.
#pragma once

#include <functional>
#include <vector>

#include "sparse/operator.hpp"

namespace roarray::sparse {

/// Which proximal-gradient flavor to run.
enum class Algorithm {
  kIsta,   ///< plain proximal gradient (baseline, slower convergence).
  kFista,  ///< Nesterov-accelerated with adaptive (function) restart.
};

/// Solver configuration.
struct SolveConfig {
  Algorithm algorithm = Algorithm::kFista;
  int max_iterations = 400;
  /// Stop when the relative iterate change drops below this.
  double tolerance = 1e-6;
  /// Regularization weight kappa. <= 0 means "auto": kappa =
  /// kappa_ratio * ||S^H y||_inf (the smallest kappa giving x = 0 is
  /// exactly ||S^H y||_inf, so the ratio directly sets sparsity).
  double kappa = -1.0;
  double kappa_ratio = 0.15;
  /// Safety factor applied to the power-iteration Lipschitz estimate.
  double lipschitz_safety = 1.05;
  /// Precomputed lambda_max(S^H S) (e.g. from runtime::OperatorCache).
  /// <= 0 means "estimate per call by power iteration". Because the
  /// power iteration is deterministic, a cached value equals the
  /// per-call one exactly — solutions are bit-identical either way.
  double lipschitz_hint = -1.0;
  /// Reuse cached forward applications across iterations: S z is formed
  /// from the momentum identity S z = (1 + beta) S x_new - beta S x_prev
  /// instead of a fresh operator application, cutting the per-iteration
  /// operator cost from 3 applications to 2 (the objective evaluation's
  /// S x_new is kept and becomes the next iterate's cached value). The
  /// identity is exact in exact arithmetic; in floating point iterates
  /// match the direct path to solver tolerance (see DESIGN.md). false
  /// recovers the direct 3-application path.
  bool reuse_applies = true;
};

/// Result of a single-snapshot solve.
struct SolveResult {
  CVec x;                         ///< recovered sparse coefficient vector.
  int iterations = 0;             ///< iterations actually run.
  bool converged = false;         ///< tolerance reached before max_iterations.
  double kappa = 0.0;             ///< regularization weight actually used.
  std::vector<double> objective;  ///< objective value after each iteration.
};

/// Result of a multi-snapshot (group) solve.
struct GroupSolveResult {
  CMat x;                         ///< n x k row-sparse coefficient matrix.
  int iterations = 0;
  bool converged = false;
  double kappa = 0.0;
  std::vector<double> objective;
};

/// Optional per-iteration observer (used to trace spectrum sharpening,
/// paper Fig. 3). Called after each iteration with the current iterate.
using IterationCallback = std::function<void(int iteration, const CVec& x)>;

/// Smallest kappa for which the l1 solution is identically zero.
[[nodiscard]] double kappa_max(const LinearOperator& op, const CVec& y);

/// Solves min_x 1/2 ||y - S x||^2 + kappa ||x||_1.
/// Throws std::invalid_argument on dimension mismatch.
[[nodiscard]] SolveResult solve_l1(const LinearOperator& op, const CVec& y,
                                   const SolveConfig& cfg = {},
                                   const IterationCallback& callback = nullptr);

/// Solves the row-group problem
/// min_X 1/2 ||Y - S X||_F^2 + kappa sum_i ||X(i,:)||_2.
/// The optional pool parallelizes the per-snapshot operator columns
/// (results identical to the serial path).
[[nodiscard]] GroupSolveResult solve_group_l1(
    const LinearOperator& op, const CMat& y, const SolveConfig& cfg = {},
    const runtime::ThreadPool* pool = nullptr);

/// Objective value 1/2 ||y - S x||^2 + kappa ||x||_1 (for tests/benches).
[[nodiscard]] double l1_objective(const LinearOperator& op, const CVec& y,
                                  const CVec& x, double kappa);

}  // namespace roarray::sparse
