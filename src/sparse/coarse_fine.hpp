// Coarse-to-fine factored dictionary search (ROADMAP item 1; the
// MOMP-style two-resolution pattern): a cheap greedy pass over
// decimated per-dimension grids selects candidate (theta, tau) cells,
// local refinement windows around the survivors are unioned per
// dimension, and the convex solve then runs restricted to the pruned
// Cartesian sub-dictionary through SupportOperator — turning the
// dominant per-iteration cost from O(M L Ntau + M Nth Ntau) over the
// full grid into the same expressions over the (much smaller) selected
// index sets. See DESIGN.md "Coarse-to-fine factored dictionary" for
// the agreement contract with the full-grid solve.
#pragma once

#include <vector>

#include "dsp/grid.hpp"
#include "sparse/operator.hpp"

namespace roarray::sparse {

/// Knobs of the coarse-to-fine solve path (consumed by
/// core::RoArrayConfig; see EXPERIMENTS.md for tuning guidance).
struct CoarseFineConfig {
  /// Off by default: the full-grid solve stays the reference path.
  bool enabled = false;
  /// Grid decimation factors of the coarse pass (>= 1; 1 keeps every
  /// sample along that axis). The coarse grid keeps every
  /// decimation-th fine sample starting at index 0, so coarse atoms
  /// are fine atoms and candidates map back by index * decimation.
  index_t aoa_decimation = 4;
  index_t toa_decimation = 2;
  /// Half-width (in fine grid cells) of the refinement window unioned
  /// around each coarse candidate. < 0 picks a per-dimension default:
  /// decimation / 2 covers every fine cell whose nearest coarse sample
  /// is the candidate; the AoA radius adds one cell of slack because
  /// the broad AoA mainlobe lets noise push the coarse argmax across a
  /// bin boundary, while the ToA correlation is sharp enough (and its
  /// decimation small enough) that the exact cover suffices.
  index_t aoa_refine_radius = -1;
  index_t toa_refine_radius = -1;
  /// Atom budget of the coarse greedy pass, per snapshot. Must cover
  /// the paths present; the default leaves headroom over the default
  /// core::RoArrayConfig::max_paths.
  index_t max_candidates = 8;
  /// Early-stop residual of the coarse pass, as a fraction of ||y||.
  double coarse_residual_tolerance = 0.02;
  /// Coarse atoms whose least-squares coefficient magnitude falls below
  /// this fraction of the strongest atom's (per snapshot column) are
  /// noise picks — the greedy pass keeps selecting into the noise floor
  /// after the real paths are explained — and spawn no refinement
  /// window. Without this filter a moderate-SNR burst unions windows
  /// over most of the grid and the restricted solve prunes nothing.
  /// Must lie in [0, 1).
  double min_rel_gain = 0.12;
  /// Iteration cap of the restricted convex solve. The pruned
  /// subproblem is orders of magnitude smaller and far better
  /// conditioned than the full-grid one, so it stabilizes its
  /// (grid-quantized) peaks in a fraction of the full budget; the cap
  /// applies as min(solver.max_iterations, this). <= 0 inherits
  /// solver.max_iterations unchanged.
  int max_refine_iterations = 100;
  /// Convergence tolerance (relative iterate change) of the restricted
  /// solve; applies as max(solver.tolerance, this). The peaks only need
  /// grid-cell accuracy, so easy (rank-1, small-support) subproblems
  /// exit long before the iteration cap while hard ones keep their full
  /// budget — an adaptive cut the blunt cap cannot make. <= 0 inherits
  /// solver.tolerance unchanged. Must be < 1.
  double refine_tolerance = 3e-4;

  /// Throws std::invalid_argument on nonsense (non-positive decimation
  /// or candidate budget, negative residual tolerance, out-of-range
  /// relative gain floor or refine tolerance).
  void validate() const;
};

/// The coarse companion of a fine grid: every `decimation`-th sample,
/// starting at the first. Returns the fine grid unchanged when the
/// decimation keeps every point.
[[nodiscard]] dsp::Grid decimate_grid(const dsp::Grid& fine,
                                      index_t decimation);

/// A factored (per-dimension) support over the fine grids: strictly
/// increasing AoA and ToA column indices. The pruned dictionary is
/// their Cartesian product — exactly what SupportOperator consumes.
struct FactoredSupport {
  std::vector<index_t> aoa;
  std::vector<index_t> toa;

  [[nodiscard]] bool empty() const noexcept {
    return aoa.empty() || toa.empty();
  }
};

/// Runs the coarse greedy (OMP) pass on every snapshot column of
/// `snapshots` against `coarse_op` — the operator over the decimated
/// grids — and unions the refinement windows of every selected atom
/// into a factored fine-grid support. The grid tail past the last
/// coarse sample (when the point count does not divide evenly) belongs
/// to the last coarse atom's window, so every fine cell stays
/// reachable. Returns an empty support iff no snapshot had any
/// correlated energy (an all-zero measurement). Throws
/// std::invalid_argument when `coarse_op` does not match the decimated
/// fine grids.
[[nodiscard]] FactoredSupport select_factored_support(
    const KroneckerOperator& coarse_op, const CMat& snapshots,
    index_t fine_aoa_n, index_t fine_toa_n, const CoarseFineConfig& cfg);

}  // namespace roarray::sparse
