// Orthogonal Matching Pursuit: the classic greedy alternative to l1
// relaxation. Included as an ablation against the paper's convex
// formulation — OMP is faster per path but needs an explicit sparsity
// budget and is brittle when paths are correlated or SNR is low, which
// is exactly the regime the paper targets.
#pragma once

#include <vector>

#include "sparse/operator.hpp"

namespace roarray::sparse {

struct OmpConfig {
  /// Greedy iterations = maximum number of recovered atoms.
  index_t max_atoms = 6;
  /// Stop early once the residual norm falls below this fraction of the
  /// measurement norm.
  double residual_tolerance = 0.05;
};

struct OmpResult {
  CVec x;                        ///< sparse coefficients (dense storage).
  std::vector<index_t> support;  ///< selected atom indices, in pick order.
  double residual_norm = 0.0;    ///< final ||y - S x||.
  index_t iterations = 0;
};

/// Greedy solve of y ~= S x with at most cfg.max_atoms nonzeros:
/// repeatedly picks the atom best correlated with the residual, then
/// re-fits all selected coefficients by least squares. Throws
/// std::invalid_argument on dimension mismatch or a non-positive budget.
[[nodiscard]] OmpResult solve_omp(const LinearOperator& op, const CVec& y,
                                  const OmpConfig& cfg = {});

}  // namespace roarray::sparse
