// Power iteration for the operator norm ||S||_2^2 = lambda_max(S^H S),
// the Lipschitz constant the proximal-gradient solvers step against.
#pragma once

#include "sparse/operator.hpp"

namespace roarray::sparse {

/// Estimates lambda_max(S^H S) by power iteration on S^H S with a
/// deterministic starting vector. Accurate to ~1% in tens of iterations,
/// which is plenty: FISTA only needs an upper bound within a small
/// safety factor (applied by the caller). Throws std::invalid_argument
/// on a non-positive iteration count; returns 0.0 only for a genuinely
/// zero (or empty) operator.
[[nodiscard]] double operator_norm_sq(const LinearOperator& op,
                                      int iterations = 60);

}  // namespace roarray::sparse
