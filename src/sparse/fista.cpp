#include "sparse/fista.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "sparse/power.hpp"
#include "sparse/prox.hpp"

namespace roarray::sparse {

namespace {

double resolve_kappa(const LinearOperator& op, const CVec& y,
                     const SolveConfig& cfg) {
  if (cfg.kappa > 0.0) return cfg.kappa;
  return cfg.kappa_ratio * kappa_max(op, y);
}

double resolve_step(const LinearOperator& op, const SolveConfig& cfg) {
  const double norm_sq =
      cfg.lipschitz_hint > 0.0 ? cfg.lipschitz_hint : operator_norm_sq(op);
  const double lip = norm_sq * cfg.lipschitz_safety;
  if (lip <= 0.0) throw std::domain_error("solve_l1: zero operator");
  return 1.0 / lip;
}

/// 0.5 * || s - y ||^2 over interleaved complex storage of `count`
/// elements, without materializing the residual (accumulation matches
/// norm2_sq / norm_fro_sq of the explicit difference: one |.|^2 term
/// per complex element, ascending).
double half_residual_sq(const cxd* s, const cxd* y, index_t count) {
  const double* sd = reinterpret_cast<const double*>(s);
  const double* yd = reinterpret_cast<const double*>(y);
  double acc = 0.0;
  for (index_t i = 0; i < count; ++i) {
    const double dr = sd[2 * i] - yd[2 * i];
    const double di = sd[2 * i + 1] - yd[2 * i + 1];
    acc += dr * dr + di * di;
  }
  return 0.5 * acc;
}

/// Fused momentum bookkeeping over `count` complex elements: writes
/// z = x_new + beta (x_new - x) and accumulates ||x_new - x||^2 and
/// ||x_new||^2 for the relative-change stopping rule, all in one pass
/// (the unfused version walks the iterate four times).
void momentum_update(const cxd* x_new, const cxd* x, double beta, cxd* z,
                     index_t count, double& diff_sq, double& new_sq) {
  const double* nd = reinterpret_cast<const double*>(x_new);
  const double* od = reinterpret_cast<const double*>(x);
  double* zd = reinterpret_cast<double*>(z);
  double ds = 0.0;
  double ns = 0.0;
  for (index_t i = 0; i < count; ++i) {
    const double dr = nd[2 * i] - od[2 * i];
    const double di = nd[2 * i + 1] - od[2 * i + 1];
    ds += dr * dr + di * di;
    ns += nd[2 * i] * nd[2 * i] + nd[2 * i + 1] * nd[2 * i + 1];
    zd[2 * i] = nd[2 * i] + beta * dr;
    zd[2 * i + 1] = nd[2 * i + 1] + beta * di;
  }
  diff_sq = ds;
  new_sq = ns;
}

/// sz = sx_new + beta (sx_new - sx): the momentum identity on the
/// cached forward applications (reuse path).
void extrapolate(const cxd* sx_new, const cxd* sx, double beta, cxd* sz,
                 index_t count) {
  const double* nd = reinterpret_cast<const double*>(sx_new);
  const double* od = reinterpret_cast<const double*>(sx);
  double* zd = reinterpret_cast<double*>(sz);
  for (index_t i = 0; i < 2 * count; ++i) {
    zd[i] = nd[i] + beta * (nd[i] - od[i]);
  }
}

/// x_new = from - step * grad over interleaved storage (one pass; the
/// unfused version copies `from` and then subtracts a scaled copy of
/// the gradient).
void gradient_step(const cxd* from, const cxd* grad, double step, cxd* x_new,
                   index_t count) {
  const double* fd = reinterpret_cast<const double*>(from);
  const double* gd = reinterpret_cast<const double*>(grad);
  double* xd = reinterpret_cast<double*>(x_new);
  for (index_t i = 0; i < 2 * count; ++i) {
    xd[i] = fd[i] - step * gd[i];
  }
}

}  // namespace

double kappa_max(const LinearOperator& op, const CVec& y) {
  return norm_inf(op.apply_adjoint(y));
}

double l1_objective(const LinearOperator& op, const CVec& y, const CVec& x,
                    double kappa) {
  CVec r = op.apply(x);
  r -= y;
  return 0.5 * norm2_sq(r) + kappa * norm1(x);
}

// Both solvers below keep the forward applications S x and S z cached
// across iterations (cfg.reuse_applies). Per iteration the direct path
// costs three operator applications — S z for the gradient, S^H r, and
// S x_new for the objective — while the reuse path costs two: S x_new
// is retained, and the next momentum point's S z follows by linearity,
//   z = x_new + beta (x_new - x)  =>  S z = (1+beta) S x_new - beta S x,
// so the objective evaluation's application is never repeated. After a
// monotone restart beta = 0 and S z = S x_new exactly; the cached S x is
// always a direct application (never a linear combination), so error
// from the identity cannot compound across iterations.
//
// All large per-iteration buffers (iterate, momentum point, gradient,
// residual, cached applications) are allocated once and recycled via
// swaps; element-wise passes over the grid-sized iterate are fused (see
// the helpers above). This matters: the unknown block is tall (grid
// size x snapshots) and the naive expression-by-expression loop spends
// more time re-walking and re-allocating it than in the operator.

SolveResult solve_l1(const LinearOperator& op, const CVec& y,
                     const SolveConfig& cfg, const IterationCallback& callback) {
  if (y.size() != op.rows()) throw std::invalid_argument("solve_l1: rhs size");
  if (cfg.max_iterations < 1) throw std::invalid_argument("solve_l1: max_iterations");

  SolveResult out;
  out.kappa = resolve_kappa(op, y, cfg);
  const double step = resolve_step(op, cfg);
  const double shrink = step * out.kappa;
  const bool accelerated = cfg.algorithm == Algorithm::kFista;
  const bool reuse = cfg.reuse_applies;

  const index_t n = op.cols();
  const index_t m = op.rows();
  CVec x(n);
  CVec z(n);      // momentum point (equals x for ISTA)
  CVec x_new(n);
  CVec sx(m);     // S x (x starts at zero)
  CVec sz(m);     // S z, maintained only on the reuse path
  CVec sx_new(m);
  CVec residual(m);
  double t = 1.0;
  double prev_obj = half_residual_sq(sx.data(), y.data(), m);  // x = 0

  for (int it = 1; it <= cfg.max_iterations; ++it) {
    // Gradient of the smooth part at z: S^H (S z - y).
    residual = reuse ? sz : op.apply(z);
    residual -= y;
    CVec grad = op.apply_adjoint(residual);

    gradient_step(z.data(), grad.data(), step, x_new.data(), n);
    soft_threshold_inplace(x_new, shrink);
    sx_new = op.apply(x_new);
    double obj =
        half_residual_sq(sx_new.data(), y.data(), m) + out.kappa * norm1(x_new);

    if (accelerated && obj > prev_obj) {
      // Monotone restart: the momentum step overshot. Discard it and
      // take a plain proximal-gradient step from x, which the step-size
      // majorization guarantees does not increase the objective. S x is
      // already cached, so the restart gradient costs no extra forward
      // application on the reuse path.
      residual = reuse ? sx : op.apply(x);
      residual -= y;
      grad = op.apply_adjoint(residual);
      gradient_step(x.data(), grad.data(), step, x_new.data(), n);
      soft_threshold_inplace(x_new, shrink);
      sx_new = op.apply(x_new);
      obj = half_residual_sq(sx_new.data(), y.data(), m) +
            out.kappa * norm1(x_new);
      t = 1.0;
    }
    out.objective.push_back(obj);
    out.iterations = it;

    double beta = 0.0;
    if (accelerated) {
      const double t_new = 0.5 * (1.0 + std::sqrt(1.0 + 4.0 * t * t));
      beta = (t - 1.0) / t_new;
      t = t_new;
    }
    double diff_sq = 0.0;
    double new_sq = 0.0;
    momentum_update(x_new.data(), x.data(), beta, z.data(), n, diff_sq, new_sq);
    const double rel_change =
        std::sqrt(diff_sq) / std::max(1.0, std::sqrt(new_sq));
    if (reuse) extrapolate(sx_new.data(), sx.data(), beta, sz.data(), m);

    prev_obj = obj;
    std::swap(x, x_new);
    std::swap(sx, sx_new);
    if (callback) callback(it, x);
    if (rel_change < cfg.tolerance) {
      out.converged = true;
      break;
    }
  }
  out.x = std::move(x);
  return out;
}

GroupSolveResult solve_group_l1(const LinearOperator& op, const CMat& y,
                                const SolveConfig& cfg,
                                const runtime::ThreadPool* pool) {
  if (y.rows() != op.rows()) throw std::invalid_argument("solve_group_l1: rhs rows");
  if (y.cols() < 1) throw std::invalid_argument("solve_group_l1: no snapshots");
  if (cfg.max_iterations < 1) {
    throw std::invalid_argument("solve_group_l1: max_iterations");
  }

  GroupSolveResult out;
  const index_t n = op.cols();
  const index_t k = y.cols();
  const index_t m = op.rows();

  // Auto kappa for the group norm: largest row norm of S^H Y.
  if (cfg.kappa > 0.0) {
    out.kappa = cfg.kappa;
  } else {
    const CMat g = op.apply_adjoint_mat(y, pool);
    const auto& bk = linalg::backend::active();
    std::vector<double> row_sq(static_cast<std::size_t>(n), 0.0);
    for (index_t j = 0; j < k; ++j) {
      bk.row_sq_accumulate(g.data() + j * n, n, row_sq.data());
    }
    double mx = 0.0;
    for (index_t i = 0; i < n; ++i) {
      mx = std::max(mx, std::sqrt(row_sq[static_cast<std::size_t>(i)]));
    }
    out.kappa = cfg.kappa_ratio * mx;
  }
  const double step = resolve_step(op, cfg);
  const double shrink = step * out.kappa;
  const bool accelerated = cfg.algorithm == Algorithm::kFista;
  const bool reuse = cfg.reuse_applies;

  CMat x(n, k);
  CMat z(n, k);
  CMat x_new(n, k);
  CMat grad(n, k);
  CMat sx(m, k);  // S x (x starts at zero)
  CMat sz(m, k);  // S z, maintained only on the reuse path
  CMat sx_new(m, k);
  CMat residual(m, k);
  std::vector<double> row_scale(static_cast<std::size_t>(n));
  double t = 1.0;
  double prev_obj = half_residual_sq(sx.data(), y.data(), m * k);  // x = 0

  // x_new = prox_{shrink ||.||_{2,1}}(from - step * grad), returning
  // ||x_new||_{2,1} for the objective. One column-major pass writes the
  // gradient step and accumulates the squared row norms; a second
  // applies the row shrink factors. The returned l2,1 value is the
  // analytic post-shrink norm (row norm times its shrink factor).
  auto prox_gradient_step = [&](const CMat& from, const CMat& g) {
    const double* fd = reinterpret_cast<const double*>(from.data());
    const double* gd = reinterpret_cast<const double*>(g.data());
    double* xd = reinterpret_cast<double*>(x_new.data());
    std::fill(row_scale.begin(), row_scale.end(), 0.0);
    for (index_t j = 0; j < k; ++j) {
      const index_t off = 2 * j * n;
      for (index_t i = 0; i < n; ++i) {
        const double xr = fd[off + 2 * i] - step * gd[off + 2 * i];
        const double xi = fd[off + 2 * i + 1] - step * gd[off + 2 * i + 1];
        xd[off + 2 * i] = xr;
        xd[off + 2 * i + 1] = xi;
        row_scale[static_cast<std::size_t>(i)] += xr * xr + xi * xi;
      }
    }
    double l21 = 0.0;
    for (index_t i = 0; i < n; ++i) {
      const double norm = std::sqrt(row_scale[static_cast<std::size_t>(i)]);
      if (norm <= shrink) {
        row_scale[static_cast<std::size_t>(i)] = -1.0;
      } else {
        const double s = 1.0 - shrink / norm;
        row_scale[static_cast<std::size_t>(i)] = s;
        l21 += norm * s;
      }
    }
    // The shrink pass is the backend row_scale kernel (bit-identical
    // across tables); the fused gradient+accumulate pass above stays
    // scalar because splitting it would double the memory traffic.
    const auto& bk = linalg::backend::active();
    for (index_t j = 0; j < k; ++j) {
      bk.row_scale(x_new.data() + j * n, n, row_scale.data());
    }
    return l21;
  };

  for (int it = 1; it <= cfg.max_iterations; ++it) {
    if (reuse) {
      residual = sz;
    } else {
      op.apply_mat_into(z, residual, pool);
    }
    residual -= y;
    op.apply_adjoint_mat_into(residual, grad, pool);

    double l21 = prox_gradient_step(z, grad);
    op.apply_mat_into(x_new, sx_new, pool);
    double obj =
        half_residual_sq(sx_new.data(), y.data(), m * k) + out.kappa * l21;

    if (accelerated && obj > prev_obj) {
      // Monotone restart (see solve_l1): redo as a plain step from x.
      if (reuse) {
        residual = sx;
      } else {
        op.apply_mat_into(x, residual, pool);
      }
      residual -= y;
      op.apply_adjoint_mat_into(residual, grad, pool);
      l21 = prox_gradient_step(x, grad);
      op.apply_mat_into(x_new, sx_new, pool);
      obj = half_residual_sq(sx_new.data(), y.data(), m * k) + out.kappa * l21;
      t = 1.0;
    }
    out.objective.push_back(obj);
    out.iterations = it;

    double beta = 0.0;
    if (accelerated) {
      const double t_new = 0.5 * (1.0 + std::sqrt(1.0 + 4.0 * t * t));
      beta = (t - 1.0) / t_new;
      t = t_new;
    }
    double diff_sq = 0.0;
    double new_sq = 0.0;
    momentum_update(x_new.data(), x.data(), beta, z.data(), n * k, diff_sq,
                    new_sq);
    const double rel_change =
        std::sqrt(diff_sq) / std::max(1.0, std::sqrt(new_sq));
    if (reuse) extrapolate(sx_new.data(), sx.data(), beta, sz.data(), m * k);

    prev_obj = obj;
    std::swap(x, x_new);
    std::swap(sx, sx_new);
    if (rel_change < cfg.tolerance) {
      out.converged = true;
      break;
    }
  }
  out.x = std::move(x);
  return out;
}

}  // namespace roarray::sparse
