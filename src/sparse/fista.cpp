#include "sparse/fista.hpp"

#include <cmath>
#include <stdexcept>

#include "sparse/power.hpp"
#include "sparse/prox.hpp"

namespace roarray::sparse {

namespace {

double resolve_kappa(const LinearOperator& op, const CVec& y,
                     const SolveConfig& cfg) {
  if (cfg.kappa > 0.0) return cfg.kappa;
  return cfg.kappa_ratio * kappa_max(op, y);
}

double resolve_step(const LinearOperator& op, const SolveConfig& cfg) {
  const double norm_sq =
      cfg.lipschitz_hint > 0.0 ? cfg.lipschitz_hint : operator_norm_sq(op);
  const double lip = norm_sq * cfg.lipschitz_safety;
  if (lip <= 0.0) throw std::domain_error("solve_l1: zero operator");
  return 1.0 / lip;
}

}  // namespace

double kappa_max(const LinearOperator& op, const CVec& y) {
  return norm_inf(op.apply_adjoint(y));
}

double l1_objective(const LinearOperator& op, const CVec& y, const CVec& x,
                    double kappa) {
  CVec r = op.apply(x);
  r -= y;
  return 0.5 * norm2_sq(r) + kappa * norm1(x);
}

SolveResult solve_l1(const LinearOperator& op, const CVec& y,
                     const SolveConfig& cfg, const IterationCallback& callback) {
  if (y.size() != op.rows()) throw std::invalid_argument("solve_l1: rhs size");
  if (cfg.max_iterations < 1) throw std::invalid_argument("solve_l1: max_iterations");

  SolveResult out;
  out.kappa = resolve_kappa(op, y, cfg);
  const double step = resolve_step(op, cfg);
  const double shrink = step * out.kappa;
  const bool accelerated = cfg.algorithm == Algorithm::kFista;

  CVec x(op.cols());
  CVec z = x;  // momentum point (equals x for ISTA)
  double t = 1.0;
  double prev_obj = l1_objective(op, y, x, out.kappa);

  for (int it = 1; it <= cfg.max_iterations; ++it) {
    // Gradient of the smooth part at z: S^H (S z - y).
    CVec residual = op.apply(z);
    residual -= y;
    CVec grad = op.apply_adjoint(residual);

    CVec x_new = z;
    axpy(cxd{-step, 0.0}, grad, x_new);
    soft_threshold_inplace(x_new, shrink);

    double obj = l1_objective(op, y, x_new, out.kappa);
    if (accelerated && obj > prev_obj) {
      // Monotone restart: the momentum step overshot. Discard it and
      // take a plain proximal-gradient step from x, which the step-size
      // majorization guarantees does not increase the objective.
      CVec res_x = op.apply(x);
      res_x -= y;
      const CVec grad_x = op.apply_adjoint(res_x);
      x_new = x;
      axpy(cxd{-step, 0.0}, grad_x, x_new);
      soft_threshold_inplace(x_new, shrink);
      obj = l1_objective(op, y, x_new, out.kappa);
      t = 1.0;
    }
    out.objective.push_back(obj);
    out.iterations = it;

    // Relative change stopping rule.
    CVec diff = x_new;
    diff -= x;
    const double rel_change = norm2(diff) / std::max(1.0, norm2(x_new));

    if (accelerated) {
      const double t_new = 0.5 * (1.0 + std::sqrt(1.0 + 4.0 * t * t));
      const double beta = (t - 1.0) / t_new;
      z = x_new;
      axpy(cxd{beta, 0.0}, diff, z);
      t = t_new;
    } else {
      z = x_new;
    }
    prev_obj = obj;
    x = std::move(x_new);
    if (callback) callback(it, x);
    if (rel_change < cfg.tolerance) {
      out.converged = true;
      break;
    }
  }
  out.x = std::move(x);
  return out;
}

GroupSolveResult solve_group_l1(const LinearOperator& op, const CMat& y,
                                const SolveConfig& cfg,
                                const runtime::ThreadPool* pool) {
  if (y.rows() != op.rows()) throw std::invalid_argument("solve_group_l1: rhs rows");
  if (y.cols() < 1) throw std::invalid_argument("solve_group_l1: no snapshots");
  if (cfg.max_iterations < 1) {
    throw std::invalid_argument("solve_group_l1: max_iterations");
  }

  GroupSolveResult out;
  // Auto kappa for the group norm: largest row norm of S^H Y.
  if (cfg.kappa > 0.0) {
    out.kappa = cfg.kappa;
  } else {
    const CMat g = op.apply_adjoint_mat(y, pool);
    double mx = 0.0;
    for (index_t i = 0; i < g.rows(); ++i) {
      double row_sq = 0.0;
      for (index_t j = 0; j < g.cols(); ++j) row_sq += std::norm(g(i, j));
      mx = std::max(mx, std::sqrt(row_sq));
    }
    out.kappa = cfg.kappa_ratio * mx;
  }
  const double step = resolve_step(op, cfg);
  const double shrink = step * out.kappa;
  const bool accelerated = cfg.algorithm == Algorithm::kFista;

  const index_t n = op.cols();
  const index_t k = y.cols();
  CMat x(n, k);
  CMat z = x;
  double t = 1.0;
  auto objective = [&](const CMat& xm) {
    CMat r = op.apply_mat(xm, pool);
    r -= y;
    return 0.5 * norm_fro(r) * norm_fro(r) + out.kappa * norm_l21_rows(xm);
  };
  double prev_obj = objective(x);

  for (int it = 1; it <= cfg.max_iterations; ++it) {
    CMat residual = op.apply_mat(z, pool);
    residual -= y;
    CMat grad = op.apply_adjoint_mat(residual, pool);

    CMat x_new = z;
    grad *= cxd{step, 0.0};
    x_new -= grad;
    group_soft_threshold_rows_inplace(x_new, shrink);

    double obj = objective(x_new);
    if (accelerated && obj > prev_obj) {
      // Monotone restart (see solve_l1): redo as a plain step from x.
      CMat res_x = op.apply_mat(x, pool);
      res_x -= y;
      CMat grad_x = op.apply_adjoint_mat(res_x, pool);
      grad_x *= cxd{step, 0.0};
      x_new = x;
      x_new -= grad_x;
      group_soft_threshold_rows_inplace(x_new, shrink);
      obj = objective(x_new);
      t = 1.0;
    }
    out.objective.push_back(obj);
    out.iterations = it;

    CMat diff = x_new;
    diff -= x;
    const double rel_change = norm_fro(diff) / std::max(1.0, norm_fro(x_new));

    if (accelerated) {
      const double t_new = 0.5 * (1.0 + std::sqrt(1.0 + 4.0 * t * t));
      const double beta = (t - 1.0) / t_new;
      z = x_new;
      diff *= cxd{beta, 0.0};
      z += diff;
      t = t_new;
    } else {
      z = x_new;
    }
    prev_obj = obj;
    x = std::move(x_new);
    if (rel_change < cfg.tolerance) {
      out.converged = true;
      break;
    }
  }
  out.x = std::move(x);
  return out;
}

}  // namespace roarray::sparse
