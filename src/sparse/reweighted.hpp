// Iteratively reweighted l1 (Candes, Wakin & Boyd 2008): a sequence of
// weighted l1 solves whose weights 1 / (|x_i| + eps) push the relaxation
// closer to the l0 ideal, sharpening spectrum peaks. An optional
// refinement over the paper's single l1 solve.
#pragma once

#include "sparse/fista.hpp"
#include "sparse/operator.hpp"

namespace roarray::sparse {

struct ReweightedConfig {
  /// Number of reweighting rounds (1 = plain l1).
  int rounds = 3;
  /// Weight damping: w_i = 1 / (|x_i| + epsilon * max|x|).
  double epsilon = 0.1;
  /// Inner solver settings (kappa resolved on the first round and kept).
  SolveConfig inner;
};

struct ReweightedResult {
  CVec x;
  int total_inner_iterations = 0;
  double kappa = 0.0;
};

/// Runs `rounds` of weighted l1 minimization. Weighting is implemented
/// by column-scaling the operator: solving min 1/2||y - S D z||^2 +
/// kappa ||z||_1 with D = diag(1/w) and returning x = D z.
[[nodiscard]] ReweightedResult solve_reweighted_l1(const LinearOperator& op,
                                                   const CVec& y,
                                                   const ReweightedConfig& cfg
                                                   = {});

}  // namespace roarray::sparse
