// l1-SVD multi-snapshot reduction (Malioutov, Cetin & Willsky 2005),
// the paper's "multi-packet fusion" primitive: instead of solving one
// sparse problem per packet and clustering, project the snapshot matrix
// onto its K dominant singular directions and solve one small row-sparse
// (l2,1) problem — coherent across the time domain.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace roarray::sparse {

using linalg::CMat;
using linalg::index_t;
using linalg::RVec;

/// Result of reducing a snapshot matrix to its dominant subspace.
struct SvdReduction {
  CMat reduced;              ///< m x k: Y V_k = U_k Sigma_k.
  RVec singular_values;      ///< all min(m, p) singular values, descending.
  index_t rank_estimate = 0; ///< number of singular values above the noise knee.
};

/// Reduces snapshots Y (m x p) to the k_keep dominant singular
/// directions. If k_keep <= 0, k is estimated from the singular-value
/// profile: the largest k with sigma_k >= rel_threshold * sigma_1,
/// clamped to [1, min(m, p)].
[[nodiscard]] SvdReduction reduce_snapshots(const CMat& snapshots,
                                            index_t k_keep = -1,
                                            double rel_threshold = 0.1);

}  // namespace roarray::sparse
