#include "sparse/admm.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/cholesky.hpp"
#include "sparse/prox.hpp"

namespace roarray::sparse {

using linalg::cholesky;
using linalg::cholesky_solve;

SolveResult solve_l1_admm(const LinearOperator& op, const CVec& y,
                          const AdmmConfig& cfg) {
  if (y.size() != op.rows()) throw std::invalid_argument("solve_l1_admm: rhs size");
  if (cfg.rho <= 0.0) throw std::invalid_argument("solve_l1_admm: rho must be > 0");
  if (cfg.max_iterations < 1) {
    throw std::invalid_argument("solve_l1_admm: max_iterations");
  }

  SolveResult out;
  out.kappa = cfg.kappa > 0.0 ? cfg.kappa : cfg.kappa_ratio * kappa_max(op, y);

  const index_t m = op.rows();
  const index_t n = op.cols();

  // Woodbury: (S^H S + rho I)^{-1} b = (b - S^H (rho I + S S^H)^{-1} S b)/rho.
  // Factor (rho I + S S^H) once.
  CMat small = op.row_gram();
  for (index_t i = 0; i < m; ++i) small(i, i) += cxd{cfg.rho, 0.0};
  const CMat l_factor = cholesky(small);

  const CVec sty = op.apply_adjoint(y);
  CVec x(n), z(n), u(n);

  auto x_update = [&](const CVec& b) {
    const CVec sb = op.apply(b);
    const CVec inner = cholesky_solve(l_factor, sb);
    CVec corr = op.apply_adjoint(inner);
    CVec result = b;
    result -= corr;
    result *= cxd{1.0 / cfg.rho, 0.0};
    return result;
  };

  for (int it = 1; it <= cfg.max_iterations; ++it) {
    // b = S^H y + rho (z - u)
    CVec b = z;
    b -= u;
    b *= cxd{cfg.rho, 0.0};
    b += sty;
    x = x_update(b);

    CVec z_old = z;
    z = x;
    z += u;
    soft_threshold_inplace(z, out.kappa / cfg.rho);

    // u += x - z
    CVec primal = x;
    primal -= z;
    u += primal;

    out.iterations = it;
    out.objective.push_back(l1_objective(op, y, z, out.kappa));

    CVec dual = z;
    dual -= z_old;
    const double primal_res = norm2(primal) / std::max(1.0, norm2(x));
    const double dual_res = cfg.rho * norm2(dual) / std::max(1.0, norm2(u) * cfg.rho);
    if (primal_res < cfg.tolerance && dual_res < cfg.tolerance) {
      out.converged = true;
      break;
    }
  }
  out.x = std::move(z);  // z is the sparse iterate (exactly thresholded)
  return out;
}

}  // namespace roarray::sparse
