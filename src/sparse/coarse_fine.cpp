#include "sparse/coarse_fine.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <stdexcept>
#include <string>

#include "sparse/omp.hpp"

namespace roarray::sparse {

namespace {

/// Number of points in the decimated companion of an n-point grid.
index_t decimated_size(index_t n, index_t decimation) {
  return (n - 1) / decimation + 1;
}

/// Unions [center - radius, center + radius + hi_extend] (clamped to
/// [0, n)) into the per-cell mask. hi_extend covers the fine-grid tail
/// past the last coarse sample when the decimation does not divide the
/// point count evenly.
void mark_window(std::vector<char>& mask, index_t center, index_t radius,
                 index_t hi_extend) {
  const auto n = static_cast<index_t>(mask.size());
  const index_t lo = std::max<index_t>(0, center - radius);
  const index_t hi = std::min<index_t>(n - 1, center + radius + hi_extend);
  for (index_t i = lo; i <= hi; ++i) mask[static_cast<std::size_t>(i)] = 1;
}

std::vector<index_t> mask_to_indices(const std::vector<char>& mask) {
  std::vector<index_t> out;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) out.push_back(static_cast<index_t>(i));
  }
  return out;
}

}  // namespace

void CoarseFineConfig::validate() const {
  if (aoa_decimation < 1 || toa_decimation < 1) {
    throw std::invalid_argument(
        "CoarseFineConfig: decimation factors must be >= 1");
  }
  if (max_candidates < 1) {
    throw std::invalid_argument(
        "CoarseFineConfig: max_candidates must be >= 1");
  }
  if (coarse_residual_tolerance < 0.0) {
    throw std::invalid_argument(
        "CoarseFineConfig: coarse_residual_tolerance must be >= 0");
  }
  if (min_rel_gain < 0.0 || min_rel_gain >= 1.0) {
    throw std::invalid_argument(
        "CoarseFineConfig: min_rel_gain must lie in [0, 1)");
  }
  if (refine_tolerance >= 1.0) {
    throw std::invalid_argument(
        "CoarseFineConfig: refine_tolerance must be < 1");
  }
}

dsp::Grid decimate_grid(const dsp::Grid& fine, index_t decimation) {
  if (decimation < 1) {
    throw std::invalid_argument("decimate_grid: decimation must be >= 1");
  }
  const index_t nc = decimated_size(fine.size(), decimation);
  if (nc == fine.size()) return fine;
  // Coarse points are fine points: same lo, every decimation-th sample.
  return dsp::Grid(fine.lo(),
                   fine.lo() + static_cast<double>((nc - 1) * decimation) *
                                   fine.step(),
                   nc);
}

FactoredSupport select_factored_support(const KroneckerOperator& coarse_op,
                                        const CMat& snapshots,
                                        index_t fine_aoa_n, index_t fine_toa_n,
                                        const CoarseFineConfig& cfg) {
  cfg.validate();
  if (fine_aoa_n < 1 || fine_toa_n < 1) {
    throw std::invalid_argument(
        "select_factored_support: fine grid sizes must be >= 1");
  }
  const index_t nc_aoa = decimated_size(fine_aoa_n, cfg.aoa_decimation);
  const index_t nc_toa = decimated_size(fine_toa_n, cfg.toa_decimation);
  if (coarse_op.left().cols() != nc_aoa || coarse_op.right().cols() != nc_toa) {
    throw std::invalid_argument(
        "select_factored_support: coarse operator columns (" +
        std::to_string(coarse_op.left().cols()) + " x " +
        std::to_string(coarse_op.right().cols()) +
        ") do not match the decimated fine grids (" + std::to_string(nc_aoa) +
        " x " + std::to_string(nc_toa) + ")");
  }
  if (snapshots.rows() != coarse_op.rows()) {
    throw std::invalid_argument(
        "select_factored_support: snapshot rows do not match the operator");
  }

  const index_t aoa_radius = cfg.aoa_refine_radius >= 0
                                 ? cfg.aoa_refine_radius
                                 : cfg.aoa_decimation / 2 + 1;
  const index_t toa_radius = cfg.toa_refine_radius >= 0
                                 ? cfg.toa_refine_radius
                                 : cfg.toa_decimation / 2;

  std::vector<char> aoa_mask(static_cast<std::size_t>(fine_aoa_n), 0);
  std::vector<char> toa_mask(static_cast<std::size_t>(fine_toa_n), 0);

  OmpConfig omp;
  omp.max_atoms = cfg.max_candidates;
  omp.residual_tolerance = cfg.coarse_residual_tolerance;

  CVec y(snapshots.rows());
  for (index_t k = 0; k < snapshots.cols(); ++k) {
    for (index_t r = 0; r < snapshots.rows(); ++r) y[r] = snapshots(r, k);
    const OmpResult picked = solve_omp(coarse_op, y, omp);
    double strongest = 0.0;
    for (const index_t atom : picked.support) {
      strongest = std::max(strongest, std::abs(picked.x[atom]));
    }
    const double gain_floor = cfg.min_rel_gain * strongest;
    for (const index_t atom : picked.support) {
      if (std::abs(picked.x[atom]) < gain_floor) continue;  // noise pick
      const index_t ci = atom % nc_aoa;  // coarse AoA index (AoA-fastest)
      const index_t cj = atom / nc_aoa;  // coarse ToA index
      mark_window(aoa_mask, ci * cfg.aoa_decimation, aoa_radius,
                  ci == nc_aoa - 1 ? cfg.aoa_decimation : 0);
      mark_window(toa_mask, cj * cfg.toa_decimation, toa_radius,
                  cj == nc_toa - 1 ? cfg.toa_decimation : 0);
    }
  }

  FactoredSupport support;
  support.aoa = mask_to_indices(aoa_mask);
  support.toa = mask_to_indices(toa_mask);
  return support;
}

}  // namespace roarray::sparse
