// Abstract linear operators for the sparse-recovery solvers.
//
// Solvers only need S x, S^H y, and the small row Gram matrix S S^H, so
// they are written against this interface. Two implementations exist:
// a dense wrapper and a Kronecker-structured operator exploiting the
// separable AoA x ToA structure of the joint steering matrix (paper
// Eq. 16), which turns the dominant matvec cost from O(M*L*Nth*Ntau)
// into O(M*Nth*Ntau + M*L*Ntau). Both route their matrix products
// through the blocked GEMM kernels in linalg/gemm.hpp; the Kronecker
// operator additionally batches all snapshot columns of apply_mat /
// apply_adjoint_mat into three GEMMs via the reshape trick (see
// DESIGN.md "Operator fast path").
#pragma once

#include <memory>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace roarray::runtime {
class ThreadPool;
}

namespace roarray::sparse {

using linalg::CMat;
using linalg::CVec;
using linalg::cxd;
using linalg::index_t;

/// A complex linear map S : C^cols -> C^rows with adjoint access.
class LinearOperator {
 public:
  virtual ~LinearOperator() = default;

  [[nodiscard]] virtual index_t rows() const noexcept = 0;
  [[nodiscard]] virtual index_t cols() const noexcept = 0;

  /// y = S x.
  [[nodiscard]] virtual CVec apply(const CVec& x) const = 0;

  /// x = S^H y.
  [[nodiscard]] virtual CVec apply_adjoint(const CVec& y) const = 0;

  /// Application to a multi-snapshot matrix, written into y (n x k ->
  /// m x k). The default loops apply() over columns, fanning out across
  /// the pool when one is given (each column writes its own contiguous
  /// slice — bit-identical to the serial loop). Implementations may
  /// batch all columns at once; null pool = serial. y is resized if its
  /// shape is wrong and must not alias x; callers that keep a
  /// correctly-sized y across calls (the solvers' hot loops do) pay no
  /// per-call allocation or zero-fill.
  virtual void apply_mat_into(const CMat& x, CMat& y,
                              const runtime::ThreadPool* pool) const;

  /// Adjoint application to a multi-snapshot matrix, written into x
  /// (m x k -> n x k). Same contract as apply_mat_into.
  virtual void apply_adjoint_mat_into(const CMat& y, CMat& x,
                                      const runtime::ThreadPool* pool) const;

  /// Allocating conveniences (forward to the _into virtuals).
  [[nodiscard]] CMat apply_mat(const CMat& x,
                               const runtime::ThreadPool* pool = nullptr) const {
    CMat y;
    apply_mat_into(x, y, pool);
    return y;
  }
  [[nodiscard]] CMat apply_adjoint_mat(
      const CMat& y, const runtime::ThreadPool* pool = nullptr) const {
    CMat x;
    apply_adjoint_mat_into(y, x, pool);
    return x;
  }

  /// The small Gram matrix G = S S^H (rows x rows), used by ADMM through
  /// the Woodbury identity. Default builds it column by column via
  /// apply(apply_adjoint(e_i)).
  [[nodiscard]] virtual CMat row_gram() const;

 protected:
  // Copy/move are protected: this is an abstract base, and public copy
  // operations on a base reference invite accidental slicing. Concrete
  // operators remain freely copyable.
  LinearOperator() = default;
  LinearOperator(const LinearOperator&) = default;
  LinearOperator& operator=(const LinearOperator&) = default;
  LinearOperator(LinearOperator&&) = default;
  LinearOperator& operator=(LinearOperator&&) = default;
};

/// Dense operator wrapping an explicit matrix. Matrix products run
/// through the blocked GEMM (linalg/gemm.hpp).
class DenseOperator final : public LinearOperator {
 public:
  explicit DenseOperator(CMat s) : s_(std::move(s)) {}

  [[nodiscard]] index_t rows() const noexcept override { return s_.rows(); }
  [[nodiscard]] index_t cols() const noexcept override { return s_.cols(); }
  [[nodiscard]] CVec apply(const CVec& x) const override;
  [[nodiscard]] CVec apply_adjoint(const CVec& y) const override;
  void apply_mat_into(const CMat& x, CMat& y,
                      const runtime::ThreadPool* pool) const override;
  void apply_adjoint_mat_into(const CMat& y, CMat& x,
                              const runtime::ThreadPool* pool) const override;
  [[nodiscard]] CMat row_gram() const override;

  [[nodiscard]] const CMat& matrix() const noexcept { return s_; }

 private:
  CMat s_;
};

/// Kronecker-structured operator S = right (x) left, where
/// left is M x N_l (the AoA steering factor A_theta) and right is
/// L x N_r (the ToA steering factor A_tau).
///
/// Index conventions match the paper's CSI stacking (Eq. 15/16):
/// output index l * M + m (antenna-fastest), unknown index j * N_l + i
/// (AoA-fastest), so column (i, j) equals right.col(j) (x) left.col(i).
///
/// apply_mat / apply_adjoint_mat process all snapshot columns at once:
/// the column-major unknown block X (N_l*N_r x K) *is* an N_l x (N_r*K)
/// matrix, so the forward map is three batched GEMMs (left * X, a
/// deterministic permutation, * right^T) instead of K per-column
/// applies — parallelism comes from the GEMM output tiles, not from the
/// K snapshot columns.
class KroneckerOperator final : public LinearOperator {
 public:
  /// The constructor precomputes the factor transposes the batched
  /// kernels consume (right^T for the forward map, conj(right) and
  /// left^H for the adjoint) so no per-application rearrangement or
  /// allocation is needed; they are immutable, so sharing one operator
  /// across threads stays safe.
  KroneckerOperator(CMat left, CMat right)
      : left_(std::move(left)), right_(std::move(right)),
        left_adj_(linalg::adjoint(left_)),
        right_t_(linalg::transpose(right_)),
        right_conj_(linalg::conjugate(right_)) {}

  [[nodiscard]] index_t rows() const noexcept override {
    return left_.rows() * right_.rows();
  }
  [[nodiscard]] index_t cols() const noexcept override {
    return left_.cols() * right_.cols();
  }
  [[nodiscard]] CVec apply(const CVec& x) const override;
  [[nodiscard]] CVec apply_adjoint(const CVec& y) const override;
  void apply_mat_into(const CMat& x, CMat& y,
                      const runtime::ThreadPool* pool) const override;
  void apply_adjoint_mat_into(const CMat& y, CMat& x,
                              const runtime::ThreadPool* pool) const override;

  /// G = (right right^H) (x) (left left^H), formed from the two small
  /// factor Grams — never touches the full column dimension.
  [[nodiscard]] CMat row_gram() const override;

  [[nodiscard]] const CMat& left() const noexcept { return left_; }
  [[nodiscard]] const CMat& right() const noexcept { return right_; }

  /// Materializes the dense matrix (tests / small problems only).
  [[nodiscard]] CMat to_dense() const;

 private:
  /// Batched forward/adjoint kernel shared by apply and apply_mat:
  /// x and y are column-major blocks of k snapshot columns.
  void apply_batched(const cxd* x, index_t k, cxd* y,
                     const runtime::ThreadPool* pool) const;
  void apply_adjoint_batched(const cxd* y, index_t k, cxd* x,
                             const runtime::ThreadPool* pool) const;

  CMat left_;        // M x N_l
  CMat right_;       // L x N_r
  CMat left_adj_;    // left^H (N_l x M), precomputed for the adjoint
  CMat right_t_;     // right^T (N_r x L), precomputed for the forward
  CMat right_conj_;  // conj(right) (L x N_r), precomputed for the adjoint
};

/// Restriction of a Kronecker operator to a factored (Cartesian)
/// column support: keep AoA columns I = left_support and ToA columns
/// J = right_support, i.e. the full columns {j * N_l + i : i in I,
/// j in J}. Because the support factors per dimension, the restricted
/// dictionary is itself a Kronecker product of the gathered factor
/// columns — so the sub-operator keeps the batched three-GEMM fast
/// path of KroneckerOperator, with per-application cost scaling in
/// |I| and |J| instead of N_l and N_r. This is the solve stage of the
/// coarse-to-fine path (sparse/coarse_fine.hpp): FISTA / ADMM /
/// group solvers run on it unchanged, and scatter() embeds the
/// restricted solution back into full-grid coordinates.
class SupportOperator final : public LinearOperator {
 public:
  /// Both supports must be non-empty, strictly increasing, and within
  /// the source factor's column range (throws std::invalid_argument
  /// otherwise). The gathered factor columns are copied, so the source
  /// operator may be destroyed afterwards.
  SupportOperator(const KroneckerOperator& full,
                  std::vector<index_t> left_support,
                  std::vector<index_t> right_support);

  [[nodiscard]] index_t rows() const noexcept override { return sub_.rows(); }
  [[nodiscard]] index_t cols() const noexcept override { return sub_.cols(); }
  [[nodiscard]] CVec apply(const CVec& x) const override {
    return sub_.apply(x);
  }
  [[nodiscard]] CVec apply_adjoint(const CVec& y) const override {
    return sub_.apply_adjoint(y);
  }
  void apply_mat_into(const CMat& x, CMat& y,
                      const runtime::ThreadPool* pool) const override {
    sub_.apply_mat_into(x, y, pool);
  }
  void apply_adjoint_mat_into(const CMat& y, CMat& x,
                              const runtime::ThreadPool* pool) const override {
    sub_.apply_adjoint_mat_into(y, x, pool);
  }
  [[nodiscard]] CMat row_gram() const override { return sub_.row_gram(); }

  [[nodiscard]] const std::vector<index_t>& left_support() const noexcept {
    return left_support_;
  }
  [[nodiscard]] const std::vector<index_t>& right_support() const noexcept {
    return right_support_;
  }
  /// Column count of the full (unrestricted) operator.
  [[nodiscard]] index_t full_cols() const noexcept { return full_cols_; }

  /// Full-grid column index of restricted unknown `local`
  /// (local = b * |I| + a maps to right_support[b] * N_l +
  /// left_support[a], preserving the AoA-fastest layout).
  [[nodiscard]] index_t full_index(index_t local) const;

  /// Embeds a restricted solution into full-grid coordinates (zeros
  /// off-support). Matrix overload scatters every snapshot column.
  [[nodiscard]] CVec scatter(const CVec& x_restricted) const;
  [[nodiscard]] CMat scatter(const CMat& x_restricted) const;

  /// The inner restricted Kronecker operator (tests / diagnostics).
  [[nodiscard]] const KroneckerOperator& sub() const noexcept { return sub_; }

 private:
  std::vector<index_t> left_support_;
  std::vector<index_t> right_support_;
  index_t full_left_cols_ = 0;
  index_t full_cols_ = 0;
  KroneckerOperator sub_;
};

}  // namespace roarray::sparse
