// Abstract linear operators for the sparse-recovery solvers.
//
// Solvers only need S x, S^H y, and the small row Gram matrix S S^H, so
// they are written against this interface. Two implementations exist:
// a dense wrapper and a Kronecker-structured operator exploiting the
// separable AoA x ToA structure of the joint steering matrix (paper
// Eq. 16), which turns the dominant matvec cost from O(M*L*Nth*Ntau)
// into O(M*Nth*Ntau + M*L*Ntau).
#pragma once

#include <memory>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace roarray::runtime {
class ThreadPool;
}

namespace roarray::sparse {

using linalg::CMat;
using linalg::CVec;
using linalg::cxd;
using linalg::index_t;

/// A complex linear map S : C^cols -> C^rows with adjoint access.
class LinearOperator {
 public:
  LinearOperator() = default;
  LinearOperator(const LinearOperator&) = default;
  LinearOperator& operator=(const LinearOperator&) = default;
  LinearOperator(LinearOperator&&) = default;
  LinearOperator& operator=(LinearOperator&&) = default;
  virtual ~LinearOperator() = default;

  [[nodiscard]] virtual index_t rows() const noexcept = 0;
  [[nodiscard]] virtual index_t cols() const noexcept = 0;

  /// y = S x.
  [[nodiscard]] virtual CVec apply(const CVec& x) const = 0;

  /// x = S^H y.
  [[nodiscard]] virtual CVec apply_adjoint(const CVec& y) const = 0;

  /// Column-wise application to a multi-snapshot matrix (n x k -> m x k).
  [[nodiscard]] virtual CMat apply_mat(const CMat& x) const;

  /// Column-wise adjoint application (m x k -> n x k).
  [[nodiscard]] virtual CMat apply_adjoint_mat(const CMat& y) const;

  /// Pooled variants: snapshot columns are independent, so they fan out
  /// across the pool (each column writes its own contiguous slice —
  /// bit-identical to the serial loop). Null pool = serial.
  [[nodiscard]] CMat apply_mat(const CMat& x,
                               const runtime::ThreadPool* pool) const;
  [[nodiscard]] CMat apply_adjoint_mat(const CMat& y,
                                       const runtime::ThreadPool* pool) const;

  /// The small Gram matrix G = S S^H (rows x rows), used by ADMM through
  /// the Woodbury identity. Default builds it column by column via
  /// apply(apply_adjoint(e_i)).
  [[nodiscard]] virtual CMat row_gram() const;
};

/// Dense operator wrapping an explicit matrix.
class DenseOperator final : public LinearOperator {
 public:
  explicit DenseOperator(CMat s) : s_(std::move(s)) {}

  [[nodiscard]] index_t rows() const noexcept override { return s_.rows(); }
  [[nodiscard]] index_t cols() const noexcept override { return s_.cols(); }
  [[nodiscard]] CVec apply(const CVec& x) const override;
  [[nodiscard]] CVec apply_adjoint(const CVec& y) const override;
  [[nodiscard]] CMat row_gram() const override;

  [[nodiscard]] const CMat& matrix() const noexcept { return s_; }

 private:
  CMat s_;
};

/// Kronecker-structured operator S = right (x) left, where
/// left is M x N_l (the AoA steering factor A_theta) and right is
/// L x N_r (the ToA steering factor A_tau).
///
/// Index conventions match the paper's CSI stacking (Eq. 15/16):
/// output index l * M + m (antenna-fastest), unknown index j * N_l + i
/// (AoA-fastest), so column (i, j) equals right.col(j) (x) left.col(i).
class KroneckerOperator final : public LinearOperator {
 public:
  KroneckerOperator(CMat left, CMat right)
      : left_(std::move(left)), right_(std::move(right)) {}

  [[nodiscard]] index_t rows() const noexcept override {
    return left_.rows() * right_.rows();
  }
  [[nodiscard]] index_t cols() const noexcept override {
    return left_.cols() * right_.cols();
  }
  [[nodiscard]] CVec apply(const CVec& x) const override;
  [[nodiscard]] CVec apply_adjoint(const CVec& y) const override;

  /// G = (right right^H) (x) (left left^H), formed from the two small
  /// factor Grams — never touches the full column dimension.
  [[nodiscard]] CMat row_gram() const override;

  [[nodiscard]] const CMat& left() const noexcept { return left_; }
  [[nodiscard]] const CMat& right() const noexcept { return right_; }

  /// Materializes the dense matrix (tests / small problems only).
  [[nodiscard]] CMat to_dense() const;

 private:
  CMat left_;   // M x N_l
  CMat right_;  // L x N_r
};

}  // namespace roarray::sparse
