#include "sparse/power.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace roarray::sparse {

double operator_norm_sq(const LinearOperator& op, int iterations) {
  if (iterations <= 0) {
    // A silent 0.0 here used to surface much later as a misleading
    // "solve_l1: zero operator" from resolve_step.
    throw std::invalid_argument("operator_norm_sq: iterations must be positive");
  }
  const index_t n = op.cols();
  if (n == 0 || op.rows() == 0) return 0.0;
  // Deterministic pseudo-random start vector: avoids pathological
  // alignment with an eigen-null direction without seeding a real RNG.
  // The iteration runs on single-column matrices through the _into
  // interface so the round trips recycle their buffers (resolve_step
  // calls this once per solve when no Lipschitz hint is cached); the
  // values match the vector-interface formulation bit for bit.
  CMat v(n, 1);
  double seed = 0.5;
  for (index_t i = 0; i < n; ++i) {
    seed = std::fmod(seed * 997.0 + 1.0, 1.0) + 0.1;
    v(i, 0) = cxd{seed, 0.37 * seed + 0.01};
  }
  double nv = norm_fro(v);
  v *= cxd{1.0 / nv, 0.0};

  CMat sv(op.rows(), 1);
  CMat w(n, 1);
  double lambda = 0.0;
  for (int it = 0; it < iterations; ++it) {
    op.apply_mat_into(v, sv, nullptr);
    op.apply_adjoint_mat_into(sv, w, nullptr);
    const double nw = norm_fro(w);
    if (nw <= 0.0) return 0.0;
    lambda = nw;  // ||S^H S v|| -> lambda_max as v converges
    w *= cxd{1.0 / nw, 0.0};
    std::swap(v, w);
  }
  return lambda;
}

}  // namespace roarray::sparse
