#include "sparse/power.hpp"

#include <cmath>
#include <stdexcept>

namespace roarray::sparse {

double operator_norm_sq(const LinearOperator& op, int iterations) {
  if (iterations <= 0) {
    // A silent 0.0 here used to surface much later as a misleading
    // "solve_l1: zero operator" from resolve_step.
    throw std::invalid_argument("operator_norm_sq: iterations must be positive");
  }
  const index_t n = op.cols();
  if (n == 0 || op.rows() == 0) return 0.0;
  // Deterministic pseudo-random start vector: avoids pathological
  // alignment with an eigen-null direction without seeding a real RNG.
  CVec v(n);
  double seed = 0.5;
  for (index_t i = 0; i < n; ++i) {
    seed = std::fmod(seed * 997.0 + 1.0, 1.0) + 0.1;
    v[i] = cxd{seed, 0.37 * seed + 0.01};
  }
  double nv = norm2(v);
  v *= cxd{1.0 / nv, 0.0};

  double lambda = 0.0;
  for (int it = 0; it < iterations; ++it) {
    CVec w = op.apply_adjoint(op.apply(v));
    const double nw = norm2(w);
    if (nw <= 0.0) return 0.0;
    lambda = nw;  // ||S^H S v|| -> lambda_max as v converges
    w *= cxd{1.0 / nw, 0.0};
    v = std::move(w);
  }
  return lambda;
}

}  // namespace roarray::sparse
