#include "sparse/l1svd.hpp"

#include <algorithm>
#include <stdexcept>

#include "linalg/svd.hpp"

namespace roarray::sparse {

SvdReduction reduce_snapshots(const CMat& snapshots, index_t k_keep,
                              double rel_threshold) {
  if (snapshots.rows() == 0 || snapshots.cols() == 0) {
    throw std::invalid_argument("reduce_snapshots: empty snapshot matrix");
  }
  const linalg::SvdResult s = linalg::svd(snapshots);
  const index_t r = s.singular_values.size();

  SvdReduction out;
  out.singular_values = s.singular_values;

  index_t k = k_keep;
  if (k <= 0) {
    const double cutoff = rel_threshold * s.singular_values[0];
    k = 0;
    for (index_t i = 0; i < r; ++i) {
      if (s.singular_values[i] >= cutoff) ++k;
    }
    k = std::max<index_t>(1, k);
  }
  k = std::min(k, r);
  out.rank_estimate = k;

  // Y V_k = U_k Sigma_k, computed from the thin factors directly.
  out.reduced = CMat(snapshots.rows(), k);
  for (index_t j = 0; j < k; ++j) {
    for (index_t i = 0; i < snapshots.rows(); ++i) {
      out.reduced(i, j) = s.u(i, j) * s.singular_values[j];
    }
  }
  return out;
}

}  // namespace roarray::sparse
