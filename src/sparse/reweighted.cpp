#include "sparse/reweighted.hpp"

#include <cmath>
#include <stdexcept>

namespace roarray::sparse {

namespace {

/// S scaled by a diagonal on the right: (S D) x = S (D x).
class ColumnScaledOperator final : public LinearOperator {
 public:
  ColumnScaledOperator(const LinearOperator& base, const CVec& scale)
      : base_(base), scale_(scale) {}

  [[nodiscard]] index_t rows() const noexcept override { return base_.rows(); }
  [[nodiscard]] index_t cols() const noexcept override { return base_.cols(); }

  [[nodiscard]] CVec apply(const CVec& x) const override {
    CVec scaled = x;
    for (index_t i = 0; i < scaled.size(); ++i) scaled[i] *= scale_[i];
    return base_.apply(scaled);
  }

  [[nodiscard]] CVec apply_adjoint(const CVec& y) const override {
    CVec out = base_.apply_adjoint(y);
    for (index_t i = 0; i < out.size(); ++i) out[i] *= std::conj(scale_[i]);
    return out;
  }

 private:
  const LinearOperator& base_;
  const CVec& scale_;
};

}  // namespace

ReweightedResult solve_reweighted_l1(const LinearOperator& op, const CVec& y,
                                     const ReweightedConfig& cfg) {
  if (cfg.rounds < 1) {
    throw std::invalid_argument("solve_reweighted_l1: rounds < 1");
  }
  if (cfg.epsilon <= 0.0) {
    throw std::invalid_argument("solve_reweighted_l1: epsilon must be positive");
  }

  ReweightedResult out;
  // Round 1: plain l1.
  SolveConfig inner = cfg.inner;
  const SolveResult first = solve_l1(op, y, inner);
  out.x = first.x;
  out.total_inner_iterations = first.iterations;
  out.kappa = first.kappa;
  inner.kappa = first.kappa;  // keep the same regularization level

  const index_t n = op.cols();
  for (int round = 1; round < cfg.rounds; ++round) {
    double max_mag = 0.0;
    for (index_t i = 0; i < n; ++i) max_mag = std::max(max_mag, std::abs(out.x[i]));
    if (max_mag <= 0.0) break;  // all-zero solution: nothing to reweight
    const double eps = cfg.epsilon * max_mag;
    // d_i = |x_i| + eps (the inverse weight): large coefficients get
    // penalized less in the scaled problem.
    CVec d(n);
    for (index_t i = 0; i < n; ++i) d[i] = cxd{std::abs(out.x[i]) + eps, 0.0};

    const ColumnScaledOperator scaled(op, d);
    const SolveResult r = solve_l1(scaled, y, inner);
    out.total_inner_iterations += r.iterations;
    for (index_t i = 0; i < n; ++i) out.x[i] = r.x[i] * d[i];
  }
  return out;
}

}  // namespace roarray::sparse
