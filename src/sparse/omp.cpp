#include "sparse/omp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/qr.hpp"

namespace roarray::sparse {

OmpResult solve_omp(const LinearOperator& op, const CVec& y,
                    const OmpConfig& cfg) {
  if (y.size() != op.rows()) throw std::invalid_argument("solve_omp: rhs size");
  if (cfg.max_atoms < 1) throw std::invalid_argument("solve_omp: max_atoms < 1");

  const index_t m = op.rows();
  const index_t n = op.cols();
  const double y_norm = norm2(y);

  OmpResult out;
  out.x = CVec(n);
  if (y_norm <= 0.0) return out;

  // Selection uses plain (un-normalized) correlations: every steering
  // column in this library has the same norm, so normalizing by atom
  // norms would only rescale the argmax.
  CVec residual = y;
  CMat selected_cols(m, 0);

  for (index_t it = 0; it < cfg.max_atoms; ++it) {
    // Pick the atom with the largest |<s_j, r>|.
    const CVec corr = op.apply_adjoint(residual);
    index_t best = -1;
    double best_mag = 0.0;
    for (index_t j = 0; j < n; ++j) {
      const bool used = std::find(out.support.begin(), out.support.end(), j) !=
                        out.support.end();
      if (used) continue;
      const double mag = std::abs(corr[j]);
      if (mag > best_mag) {
        best_mag = mag;
        best = j;
      }
    }
    if (best < 0 || best_mag <= 1e-14 * y_norm) break;

    out.support.push_back(best);
    // Materialize the new column.
    CVec e(n);
    e[best] = cxd{1.0, 0.0};
    const CVec col = op.apply(e);
    CMat grown(m, selected_cols.cols() + 1);
    for (index_t j = 0; j < selected_cols.cols(); ++j) {
      grown.set_col(j, selected_cols.col_vec(j));
    }
    grown.set_col(selected_cols.cols(), col);
    selected_cols = std::move(grown);

    // Least-squares refit over the whole support.
    const CVec coeffs = linalg::lstsq(selected_cols, y);
    residual = y;
    for (index_t j = 0; j < selected_cols.cols(); ++j) {
      CVec scaled = selected_cols.col_vec(j);
      scaled *= -coeffs[j];
      residual += scaled;
    }
    out.iterations = it + 1;

    if (norm2(residual) <= cfg.residual_tolerance * y_norm) {
      // Write out coefficients and stop.
      out.x.fill(cxd{});
      for (std::size_t k = 0; k < out.support.size(); ++k) {
        out.x[out.support[k]] = coeffs[static_cast<index_t>(k)];
      }
      out.residual_norm = norm2(residual);
      return out;
    }
    // Keep latest coefficients in case this is the final round.
    out.x.fill(cxd{});
    for (std::size_t k = 0; k < out.support.size(); ++k) {
      out.x[out.support[k]] = coeffs[static_cast<index_t>(k)];
    }
  }
  out.residual_norm = norm2(residual);
  return out;
}

}  // namespace roarray::sparse
