#include "sparse/operator.hpp"

#include "runtime/thread_pool.hpp"

namespace roarray::sparse {

CMat LinearOperator::apply_mat(const CMat& x) const {
  CMat y(rows(), x.cols());
  for (index_t j = 0; j < x.cols(); ++j) y.set_col(j, apply(x.col_vec(j)));
  return y;
}

CMat LinearOperator::apply_adjoint_mat(const CMat& y) const {
  CMat x(cols(), y.cols());
  for (index_t j = 0; j < y.cols(); ++j) x.set_col(j, apply_adjoint(y.col_vec(j)));
  return x;
}

CMat LinearOperator::apply_mat(const CMat& x,
                               const runtime::ThreadPool* pool) const {
  if (pool == nullptr || x.cols() < 2) return apply_mat(x);
  CMat y(rows(), x.cols());
  pool->parallel_for(x.cols(),
                     [&](index_t j) { y.set_col(j, apply(x.col_vec(j))); });
  return y;
}

CMat LinearOperator::apply_adjoint_mat(const CMat& y,
                                       const runtime::ThreadPool* pool) const {
  if (pool == nullptr || y.cols() < 2) return apply_adjoint_mat(y);
  CMat x(cols(), y.cols());
  pool->parallel_for(y.cols(),
                     [&](index_t j) { x.set_col(j, apply_adjoint(y.col_vec(j))); });
  return x;
}

CMat LinearOperator::row_gram() const {
  const index_t m = rows();
  CMat g(m, m);
  for (index_t i = 0; i < m; ++i) {
    CVec e(m);
    e[i] = cxd{1.0, 0.0};
    g.set_col(i, apply(apply_adjoint(e)));
  }
  return g;
}

CVec DenseOperator::apply(const CVec& x) const { return matvec(s_, x); }

CVec DenseOperator::apply_adjoint(const CVec& y) const { return matvec_adj(s_, y); }

CMat DenseOperator::row_gram() const { return matmul(s_, adjoint(s_)); }

CVec KroneckerOperator::apply(const CVec& x) const {
  const index_t m = left_.rows(), nl = left_.cols();
  const index_t l = right_.rows(), nr = right_.cols();
  if (x.size() != nl * nr) throw std::invalid_argument("KroneckerOperator::apply: size");
  // X(i, j) = x[j * nl + i]; B = left * X (m x nr); Y = B * right^T (m x l).
  CMat b(m, nr);
  for (index_t j = 0; j < nr; ++j) {
    for (index_t i = 0; i < nl; ++i) {
      const cxd xij = x[j * nl + i];
      if (xij == cxd{}) continue;
      auto lc = left_.col(i);
      for (index_t r = 0; r < m; ++r) b(r, j) += lc[static_cast<std::size_t>(r)] * xij;
    }
  }
  CVec y(m * l);
  for (index_t j = 0; j < nr; ++j) {
    auto rc = right_.col(j);
    for (index_t li = 0; li < l; ++li) {
      const cxd rj = rc[static_cast<std::size_t>(li)];
      for (index_t r = 0; r < m; ++r) y[li * m + r] += b(r, j) * rj;
    }
  }
  return y;
}

CVec KroneckerOperator::apply_adjoint(const CVec& y) const {
  const index_t m = left_.rows(), nl = left_.cols();
  const index_t l = right_.rows(), nr = right_.cols();
  if (y.size() != m * l) {
    throw std::invalid_argument("KroneckerOperator::apply_adjoint: size");
  }
  // Y(r, li) = y[li * m + r]; B = Y * conj(right) (m x nr);
  // X = left^H * B (nl x nr); x[j * nl + i] = X(i, j).
  CMat b(m, nr);
  for (index_t j = 0; j < nr; ++j) {
    auto rc = right_.col(j);
    for (index_t li = 0; li < l; ++li) {
      const cxd rj = std::conj(rc[static_cast<std::size_t>(li)]);
      for (index_t r = 0; r < m; ++r) b(r, j) += y[li * m + r] * rj;
    }
  }
  CVec x(nl * nr);
  for (index_t j = 0; j < nr; ++j) {
    for (index_t i = 0; i < nl; ++i) {
      auto lc = left_.col(i);
      cxd acc{};
      for (index_t r = 0; r < m; ++r) {
        acc += std::conj(lc[static_cast<std::size_t>(r)]) * b(r, j);
      }
      x[j * nl + i] = acc;
    }
  }
  return x;
}

CMat KroneckerOperator::row_gram() const {
  const CMat gl = matmul(left_, adjoint(left_));    // m x m
  const CMat gr = matmul(right_, adjoint(right_));  // l x l
  const index_t m = gl.rows();
  const index_t l = gr.rows();
  CMat g(m * l, m * l);
  for (index_t lj = 0; lj < l; ++lj) {
    for (index_t li = 0; li < l; ++li) {
      const cxd grv = gr(li, lj);
      for (index_t mj = 0; mj < m; ++mj) {
        for (index_t mi = 0; mi < m; ++mi) {
          g(li * m + mi, lj * m + mj) = grv * gl(mi, mj);
        }
      }
    }
  }
  return g;
}

CMat KroneckerOperator::to_dense() const {
  const index_t n = cols();
  CMat s(rows(), n);
  for (index_t j = 0; j < n; ++j) {
    CVec e(n);
    e[j] = cxd{1.0, 0.0};
    s.set_col(j, apply(e));
  }
  return s;
}

}  // namespace roarray::sparse
