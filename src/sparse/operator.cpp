#include "sparse/operator.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

#include "linalg/gemm.hpp"
#include "runtime/thread_pool.hpp"

namespace roarray::sparse {

using linalg::gemm;
using linalg::gemm_adj_left;
using linalg::matmul_blocked;

namespace {

void ensure_shape(CMat& m, index_t rows, index_t cols) {
  if (m.rows() != rows || m.cols() != cols) m = CMat(rows, cols);
}

}  // namespace

void LinearOperator::apply_mat_into(const CMat& x, CMat& y,
                                    const runtime::ThreadPool* pool) const {
  ensure_shape(y, rows(), x.cols());
  if (pool == nullptr || x.cols() < 2) {
    for (index_t j = 0; j < x.cols(); ++j) y.set_col(j, apply(x.col_vec(j)));
    return;
  }
  pool->parallel_for(x.cols(),
                     [&](index_t j) { y.set_col(j, apply(x.col_vec(j))); });
}

void LinearOperator::apply_adjoint_mat_into(
    const CMat& y, CMat& x, const runtime::ThreadPool* pool) const {
  ensure_shape(x, cols(), y.cols());
  if (pool == nullptr || y.cols() < 2) {
    for (index_t j = 0; j < y.cols(); ++j) {
      x.set_col(j, apply_adjoint(y.col_vec(j)));
    }
    return;
  }
  pool->parallel_for(y.cols(),
                     [&](index_t j) { x.set_col(j, apply_adjoint(y.col_vec(j))); });
}

CMat LinearOperator::row_gram() const {
  const index_t m = rows();
  CMat g(m, m);
  for (index_t i = 0; i < m; ++i) {
    CVec e(m);
    e[i] = cxd{1.0, 0.0};
    g.set_col(i, apply(apply_adjoint(e)));
  }
  return g;
}

CVec DenseOperator::apply(const CVec& x) const {
  if (x.size() != s_.cols()) {
    throw std::invalid_argument("DenseOperator::apply: size");
  }
  CVec y(s_.rows());
  gemm(s_.rows(), 1, s_.cols(), s_.data(), x.data(), y.data(), nullptr);
  return y;
}

CVec DenseOperator::apply_adjoint(const CVec& y) const {
  if (y.size() != s_.rows()) {
    throw std::invalid_argument("DenseOperator::apply_adjoint: size");
  }
  CVec x(s_.cols());
  gemm_adj_left(s_.cols(), 1, s_.rows(), s_.data(), y.data(), x.data(),
                nullptr);
  return x;
}

void DenseOperator::apply_mat_into(const CMat& x, CMat& y,
                                   const runtime::ThreadPool* pool) const {
  if (x.rows() != s_.cols()) {
    throw std::invalid_argument("DenseOperator::apply_mat: rows");
  }
  ensure_shape(y, s_.rows(), x.cols());
  gemm(s_.rows(), x.cols(), s_.cols(), s_.data(), x.data(), y.data(), pool);
}

void DenseOperator::apply_adjoint_mat_into(
    const CMat& y, CMat& x, const runtime::ThreadPool* pool) const {
  if (y.rows() != s_.rows()) {
    throw std::invalid_argument("DenseOperator::apply_adjoint_mat: rows");
  }
  ensure_shape(x, s_.cols(), y.cols());
  gemm_adj_left(s_.cols(), y.cols(), s_.rows(), s_.data(), y.data(), x.data(),
                pool);
}

CMat DenseOperator::row_gram() const {
  return matmul_blocked(s_, adjoint(s_));
}

// The reshape trick. A column-major block X of k unknown columns
// (each N_l*N_r, AoA-fastest) is, viewed in memory, an N_l x (N_r*k)
// matrix whose column (c*N_r + j) holds snapshot c's AoA slice at ToA
// bin j. Likewise an output block Y (each column M*L, antenna-fastest)
// is an M x (L*k) matrix. The forward map per snapshot c is
//   Y_c = left * X_c * right^T,
// so the whole block is:
//   (1) B = left * X           one GEMM over all N_r*k columns,
//   (2) permute B (M x N_r*k) into B' (M*k x N_r): row (c*M + r),
//   (3) Y' = B' * right^T      one GEMM, rows = M*k,
//   (4) scatter Y' back to Y (column c, entry l*M + r).
// The permutations move contiguous M-element runs (memcpy), and each
// GEMM output element is produced by exactly one tile, so the result is
// bit-identical at any thread count and matches the per-column path to
// rounding.
void KroneckerOperator::apply_batched(const cxd* x, index_t k, cxd* y,
                                      const runtime::ThreadPool* pool) const {
  const index_t m = left_.rows(), nl = left_.cols();
  const index_t l = right_.rows(), nr = right_.cols();

  CMat b(m, nr * k);
  gemm(m, nr * k, nl, left_.data(), x, b.data(), pool);

  if (k == 1) {
    // Y' == Y for a single snapshot: skip both permutations.
    gemm(m, l, nr, b.data(), right_t_.data(), y, pool);
    return;
  }

  CMat bp(m * k, nr);
  for (index_t c = 0; c < k; ++c) {
    for (index_t j = 0; j < nr; ++j) {
      std::memcpy(bp.data() + j * (m * k) + c * m,
                  b.data() + (c * nr + j) * m,
                  static_cast<std::size_t>(m) * sizeof(cxd));
    }
  }

  CMat yp(m * k, l);
  gemm(m * k, l, nr, bp.data(), right_t_.data(), yp.data(), pool);

  for (index_t c = 0; c < k; ++c) {
    for (index_t li = 0; li < l; ++li) {
      std::memcpy(y + c * (m * l) + li * m,
                  yp.data() + li * (m * k) + c * m,
                  static_cast<std::size_t>(m) * sizeof(cxd));
    }
  }
}

// Adjoint of the same factorization: X_c = left^H * (Y_c * conj(right)),
// batched as gather -> GEMM -> permute -> GEMM. The final product runs
// against the precomputed left^H rather than a dot-product adjoint
// kernel: its inner dimension is the tiny antenna count, so streaming
// down contiguous N_l columns beats length-M dots. It writes straight
// into the caller's x block (its column layout is exactly the
// N_l x (N_r*k) view of the unknowns).
void KroneckerOperator::apply_adjoint_batched(
    const cxd* y, index_t k, cxd* x, const runtime::ThreadPool* pool) const {
  const index_t m = left_.rows(), nl = left_.cols();
  const index_t l = right_.rows(), nr = right_.cols();

  CMat bp(m * k, nr);
  if (k == 1) {
    gemm(m, nr, l, y, right_conj_.data(), bp.data(), pool);
    gemm(nl, nr, m, left_adj_.data(), bp.data(), x, pool);
    return;
  }

  CMat yp(m * k, l);
  for (index_t c = 0; c < k; ++c) {
    for (index_t li = 0; li < l; ++li) {
      std::memcpy(yp.data() + li * (m * k) + c * m,
                  y + c * (m * l) + li * m,
                  static_cast<std::size_t>(m) * sizeof(cxd));
    }
  }

  gemm(m * k, nr, l, yp.data(), right_conj_.data(), bp.data(), pool);

  CMat b(m, nr * k);
  for (index_t c = 0; c < k; ++c) {
    for (index_t j = 0; j < nr; ++j) {
      std::memcpy(b.data() + (c * nr + j) * m,
                  bp.data() + j * (m * k) + c * m,
                  static_cast<std::size_t>(m) * sizeof(cxd));
    }
  }

  gemm(nl, nr * k, m, left_adj_.data(), b.data(), x, pool);
}

CVec KroneckerOperator::apply(const CVec& x) const {
  if (x.size() != cols()) {
    throw std::invalid_argument("KroneckerOperator::apply: size");
  }
  CVec y(rows());
  apply_batched(x.data(), 1, y.data(), nullptr);
  return y;
}

CVec KroneckerOperator::apply_adjoint(const CVec& y) const {
  if (y.size() != rows()) {
    throw std::invalid_argument("KroneckerOperator::apply_adjoint: size");
  }
  CVec x(cols());
  apply_adjoint_batched(y.data(), 1, x.data(), nullptr);
  return x;
}

void KroneckerOperator::apply_mat_into(const CMat& x, CMat& y,
                                       const runtime::ThreadPool* pool) const {
  if (x.rows() != cols()) {
    throw std::invalid_argument("KroneckerOperator::apply_mat: rows");
  }
  ensure_shape(y, rows(), x.cols());
  if (x.cols() > 0) apply_batched(x.data(), x.cols(), y.data(), pool);
}

void KroneckerOperator::apply_adjoint_mat_into(
    const CMat& y, CMat& x, const runtime::ThreadPool* pool) const {
  if (y.rows() != rows()) {
    throw std::invalid_argument("KroneckerOperator::apply_adjoint_mat: rows");
  }
  ensure_shape(x, cols(), y.cols());
  if (y.cols() > 0) apply_adjoint_batched(y.data(), y.cols(), x.data(), pool);
}

CMat KroneckerOperator::row_gram() const {
  const CMat gl = matmul_blocked(left_, left_adj_);         // m x m
  const CMat gr = matmul_blocked(right_, adjoint(right_));  // l x l
  const index_t m = gl.rows();
  const index_t l = gr.rows();
  CMat g(m * l, m * l);
  for (index_t lj = 0; lj < l; ++lj) {
    for (index_t li = 0; li < l; ++li) {
      const cxd grv = gr(li, lj);
      for (index_t mj = 0; mj < m; ++mj) {
        for (index_t mi = 0; mi < m; ++mi) {
          g(li * m + mi, lj * m + mj) = grv * gl(mi, mj);
        }
      }
    }
  }
  return g;
}

namespace {

/// Gathers the given columns of src into a new matrix, validating the
/// support is non-empty, strictly increasing, and in range.
CMat gather_columns(const CMat& src, const std::vector<index_t>& support,
                    const char* what) {
  if (support.empty()) {
    throw std::invalid_argument(std::string("SupportOperator: empty ") + what);
  }
  index_t prev = -1;
  for (const index_t idx : support) {
    if (idx <= prev || idx >= src.cols()) {
      throw std::invalid_argument(
          std::string("SupportOperator: ") + what +
          " must be strictly increasing and within the factor columns");
    }
    prev = idx;
  }
  CMat out(src.rows(), static_cast<index_t>(support.size()));
  for (index_t j = 0; j < out.cols(); ++j) {
    std::memcpy(out.data() + j * out.rows(),
                src.data() + support[static_cast<std::size_t>(j)] * src.rows(),
                static_cast<std::size_t>(src.rows()) * sizeof(cxd));
  }
  return out;
}

}  // namespace

SupportOperator::SupportOperator(const KroneckerOperator& full,
                                 std::vector<index_t> left_support,
                                 std::vector<index_t> right_support)
    : left_support_(std::move(left_support)),
      right_support_(std::move(right_support)),
      full_left_cols_(full.left().cols()),
      full_cols_(full.cols()),
      sub_(gather_columns(full.left(), left_support_, "left support"),
           gather_columns(full.right(), right_support_, "right support")) {}

index_t SupportOperator::full_index(index_t local) const {
  const auto ni = static_cast<index_t>(left_support_.size());
  if (local < 0 || local >= cols()) {
    throw std::out_of_range("SupportOperator::full_index");
  }
  const index_t a = local % ni;
  const index_t b = local / ni;
  return right_support_[static_cast<std::size_t>(b)] * full_left_cols_ +
         left_support_[static_cast<std::size_t>(a)];
}

CVec SupportOperator::scatter(const CVec& x_restricted) const {
  if (x_restricted.size() != cols()) {
    throw std::invalid_argument("SupportOperator::scatter: size");
  }
  CVec full(full_cols_);
  for (index_t local = 0; local < cols(); ++local) {
    full[full_index(local)] = x_restricted[local];
  }
  return full;
}

CMat SupportOperator::scatter(const CMat& x_restricted) const {
  if (x_restricted.rows() != cols()) {
    throw std::invalid_argument("SupportOperator::scatter: rows");
  }
  CMat full(full_cols_, x_restricted.cols());
  for (index_t local = 0; local < cols(); ++local) {
    const index_t fi = full_index(local);
    for (index_t k = 0; k < x_restricted.cols(); ++k) {
      full(fi, k) = x_restricted(local, k);
    }
  }
  return full;
}

CMat KroneckerOperator::to_dense() const {
  const index_t n = cols();
  CMat s(rows(), n);
  for (index_t j = 0; j < n; ++j) {
    CVec e(n);
    e[j] = cxd{1.0, 0.0};
    s.set_col(j, apply(e));
  }
  return s;
}

}  // namespace roarray::sparse
