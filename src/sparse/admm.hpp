// ADMM solver for the same l1 objective as fista.hpp, using the
// Woodbury identity so the per-iteration linear solve only touches the
// small row Gram matrix S S^H (m x m), never the huge grid dimension.
#pragma once

#include "sparse/fista.hpp"
#include "sparse/operator.hpp"

namespace roarray::sparse {

/// ADMM-specific knobs on top of the shared stopping parameters.
struct AdmmConfig {
  int max_iterations = 200;
  double tolerance = 1e-6;   ///< on primal and dual residual norms.
  double rho = 1.0;          ///< augmented-Lagrangian penalty.
  double kappa = -1.0;       ///< <= 0: auto, kappa_ratio * ||S^H y||_inf.
  double kappa_ratio = 0.15;
};

/// Solves min_x 1/2||y - S x||^2 + kappa ||x||_1 by ADMM splitting
/// (x-update via Woodbury through S S^H, z-update via soft threshold).
[[nodiscard]] SolveResult solve_l1_admm(const LinearOperator& op, const CVec& y,
                                        const AdmmConfig& cfg = {});

}  // namespace roarray::sparse
