// Proximal operators for l1 and group (l2,1) regularizers on complex data.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace roarray::sparse {

using linalg::CMat;
using linalg::CVec;
using linalg::cxd;
using linalg::index_t;

/// Complex soft-thresholding: the proximal operator of t * ||.||_1 on
/// C^n shrinks each element's magnitude by t, preserving its phase:
/// prox(z) = z * max(0, 1 - t / |z|).
inline void soft_threshold_inplace(CVec& x, double t) {
  for (index_t i = 0; i < x.size(); ++i) {
    const double mag = std::abs(x[i]);
    if (mag <= t) {
      x[i] = cxd{};
    } else {
      x[i] *= (1.0 - t / mag);
    }
  }
}

/// Row-group soft-thresholding: the proximal operator of
/// t * sum_i ||X(i, :)||_2 (the l2,1 norm used by l1-SVD multi-snapshot
/// recovery). Shrinks each row's l2 norm by t, preserving direction.
///
/// Row norms are accumulated in a column-major sweep against a per-row
/// buffer: the matrix is stored column-major, so a row-outer loop would
/// stride by rows()*16 bytes per element (the solver calls this on tall
/// grid-by-snapshot iterates every iteration). Per row the squared norm
/// still sums over columns in ascending order, so the values match the
/// row-outer formulation exactly.
inline void group_soft_threshold_rows_inplace(CMat& x, double t) {
  const index_t n = x.rows();
  const index_t k = x.cols();
  if (n == 0 || k == 0) return;
  // scale[i] holds the squared row norm during the sweep, then the
  // shrink factor (-1 marks "zero the row" so rows at the threshold are
  // set exactly to zero rather than multiplied by 0).
  std::vector<double> scale(static_cast<std::size_t>(n), 0.0);
  for (index_t j = 0; j < k; ++j) {
    const double* cj = reinterpret_cast<const double*>(x.data() + j * n);
    for (index_t i = 0; i < n; ++i) {
      scale[static_cast<std::size_t>(i)] +=
          cj[2 * i] * cj[2 * i] + cj[2 * i + 1] * cj[2 * i + 1];
    }
  }
  for (index_t i = 0; i < n; ++i) {
    const double norm = std::sqrt(scale[static_cast<std::size_t>(i)]);
    scale[static_cast<std::size_t>(i)] = norm <= t ? -1.0 : 1.0 - t / norm;
  }
  for (index_t j = 0; j < k; ++j) {
    double* cj = reinterpret_cast<double*>(x.data() + j * n);
    for (index_t i = 0; i < n; ++i) {
      const double s = scale[static_cast<std::size_t>(i)];
      if (s < 0.0) {
        cj[2 * i] = 0.0;
        cj[2 * i + 1] = 0.0;
      } else {
        cj[2 * i] *= s;
        cj[2 * i + 1] *= s;
      }
    }
  }
}

/// Sum of row l2 norms (the l2,1 norm). Column-major sweep for the same
/// reason as group_soft_threshold_rows_inplace; identical values.
[[nodiscard]] inline double norm_l21_rows(const CMat& x) {
  const index_t n = x.rows();
  const index_t k = x.cols();
  if (n == 0 || k == 0) return 0.0;
  std::vector<double> row_sq(static_cast<std::size_t>(n), 0.0);
  for (index_t j = 0; j < k; ++j) {
    const double* cj = reinterpret_cast<const double*>(x.data() + j * n);
    for (index_t i = 0; i < n; ++i) {
      row_sq[static_cast<std::size_t>(i)] +=
          cj[2 * i] * cj[2 * i] + cj[2 * i + 1] * cj[2 * i + 1];
    }
  }
  double acc = 0.0;
  for (index_t i = 0; i < n; ++i) {
    acc += std::sqrt(row_sq[static_cast<std::size_t>(i)]);
  }
  return acc;
}

}  // namespace roarray::sparse
