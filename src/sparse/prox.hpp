// Proximal operators for l1 and group (l2,1) regularizers on complex data.
#pragma once

#include <algorithm>
#include <cmath>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace roarray::sparse {

using linalg::CMat;
using linalg::CVec;
using linalg::cxd;
using linalg::index_t;

/// Complex soft-thresholding: the proximal operator of t * ||.||_1 on
/// C^n shrinks each element's magnitude by t, preserving its phase:
/// prox(z) = z * max(0, 1 - t / |z|).
inline void soft_threshold_inplace(CVec& x, double t) {
  for (index_t i = 0; i < x.size(); ++i) {
    const double mag = std::abs(x[i]);
    if (mag <= t) {
      x[i] = cxd{};
    } else {
      x[i] *= (1.0 - t / mag);
    }
  }
}

/// Row-group soft-thresholding: the proximal operator of
/// t * sum_i ||X(i, :)||_2 (the l2,1 norm used by l1-SVD multi-snapshot
/// recovery). Shrinks each row's l2 norm by t, preserving direction.
inline void group_soft_threshold_rows_inplace(CMat& x, double t) {
  for (index_t i = 0; i < x.rows(); ++i) {
    double norm_sq = 0.0;
    for (index_t j = 0; j < x.cols(); ++j) norm_sq += std::norm(x(i, j));
    const double norm = std::sqrt(norm_sq);
    if (norm <= t) {
      for (index_t j = 0; j < x.cols(); ++j) x(i, j) = cxd{};
    } else {
      const double scale = 1.0 - t / norm;
      for (index_t j = 0; j < x.cols(); ++j) x(i, j) *= scale;
    }
  }
}

/// Sum of row l2 norms (the l2,1 norm).
[[nodiscard]] inline double norm_l21_rows(const CMat& x) {
  double acc = 0.0;
  for (index_t i = 0; i < x.rows(); ++i) {
    double norm_sq = 0.0;
    for (index_t j = 0; j < x.cols(); ++j) norm_sq += std::norm(x(i, j));
    acc += std::sqrt(norm_sq);
  }
  return acc;
}

}  // namespace roarray::sparse
