// Proximal operators for l1 and group (l2,1) regularizers on complex data.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "linalg/backend/backend.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace roarray::sparse {

using linalg::CMat;
using linalg::CVec;
using linalg::cxd;
using linalg::index_t;

/// Complex soft-thresholding: the proximal operator of t * ||.||_1 on
/// C^n shrinks each element's magnitude by t, preserving its phase:
/// prox(z) = z * max(0, 1 - t / |z|). Null backend uses the
/// process-global table; pass one explicitly only to pin a table
/// (differential tests). simd-vs-scalar tolerances: see
/// Backend::soft_threshold.
inline void soft_threshold_inplace(CVec& x, double t,
                                   const linalg::backend::Backend* be = nullptr) {
  const auto& bk = be != nullptr ? *be : linalg::backend::active();
  bk.soft_threshold(x.data(), x.size(), t);
}

/// Row-group soft-thresholding: the proximal operator of
/// t * sum_i ||X(i, :)||_2 (the l2,1 norm used by l1-SVD multi-snapshot
/// recovery). Shrinks each row's l2 norm by t, preserving direction.
///
/// Row norms are accumulated in a column-major sweep against a per-row
/// buffer: the matrix is stored column-major, so a row-outer loop would
/// stride by rows()*16 bytes per element (the solver calls this on tall
/// grid-by-snapshot iterates every iteration). Per row the squared norm
/// still sums over columns in ascending order, so the values match the
/// row-outer formulation exactly.
inline void group_soft_threshold_rows_inplace(
    CMat& x, double t, const linalg::backend::Backend* be = nullptr) {
  const auto& bk = be != nullptr ? *be : linalg::backend::active();
  const index_t n = x.rows();
  const index_t k = x.cols();
  if (n == 0 || k == 0) return;
  // scale[i] holds the squared row norm during the sweep, then the
  // shrink factor (-1 marks "zero the row" so rows at the threshold are
  // set exactly to zero rather than multiplied by 0).
  std::vector<double> scale(  // roarray-analyze: allow(hot-alloc) n-double scratch amortized by the O(nk) sweep
      static_cast<std::size_t>(n), 0.0);
  for (index_t j = 0; j < k; ++j) {
    bk.row_sq_accumulate(x.data() + j * n, n, scale.data());
  }
  for (index_t i = 0; i < n; ++i) {
    const double norm = std::sqrt(scale[static_cast<std::size_t>(i)]);
    scale[static_cast<std::size_t>(i)] = norm <= t ? -1.0 : 1.0 - t / norm;
  }
  for (index_t j = 0; j < k; ++j) {
    bk.row_scale(x.data() + j * n, n, scale.data());
  }
}

/// Sum of row l2 norms (the l2,1 norm). Column-major sweep for the same
/// reason as group_soft_threshold_rows_inplace; identical values.
[[nodiscard]] inline double norm_l21_rows(
    const CMat& x, const linalg::backend::Backend* be = nullptr) {
  const auto& bk = be != nullptr ? *be : linalg::backend::active();
  const index_t n = x.rows();
  const index_t k = x.cols();
  if (n == 0 || k == 0) return 0.0;
  std::vector<double> row_sq(  // roarray-analyze: allow(hot-alloc) n-double scratch amortized by the O(nk) sweep
      static_cast<std::size_t>(n), 0.0);
  for (index_t j = 0; j < k; ++j) {
    bk.row_sq_accumulate(x.data() + j * n, n, row_sq.data());
  }
  double acc = 0.0;
  for (index_t i = 0; i < n; ++i) {
    acc += std::sqrt(row_sq[static_cast<std::size_t>(i)]);
  }
  return acc;
}

}  // namespace roarray::sparse
