#include "dsp/steering.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/backend/backend.hpp"

namespace roarray::dsp {

using linalg::index_t;

cxd lambda_aoa(double theta_deg, double spacing_over_wavelength) {
  const double phase = -2.0 * kPi * spacing_over_wavelength *
                       std::cos(deg_to_rad(theta_deg));
  return std::polar(1.0, phase);
}

cxd gamma_toa(double tau_s, double subcarrier_spacing_hz) {
  const double phase = -2.0 * kPi * subcarrier_spacing_hz * tau_s;
  return std::polar(1.0, phase);
}

CVec steering_aoa(double theta_deg, const ArrayConfig& cfg) {
  const index_t m = cfg.num_antennas;
  const cxd lam = lambda_aoa(theta_deg, cfg.spacing_over_wavelength());
  CVec s(m);
  // s[i] = lam^i via the backend phase recurrence (scale 1 + 0i).
  linalg::backend::active().phase_ramp(cxd{1.0, 0.0}, lam, m, s.data());
  return s;
}

CVec steering_joint(double theta_deg, double tau_s, const ArrayConfig& cfg) {
  return steering_joint_sub(theta_deg, tau_s, cfg, cfg.num_antennas,
                            cfg.num_subcarriers);
}

CVec steering_joint_sub(double theta_deg, double tau_s, const ArrayConfig& cfg,
                        index_t ms, index_t ls) {
  if (ms < 1 || ms > cfg.num_antennas || ls < 1 || ls > cfg.num_subcarriers) {
    throw std::invalid_argument("steering_joint_sub: sub-array out of range");
  }
  const cxd lam = lambda_aoa(theta_deg, cfg.spacing_over_wavelength());
  const cxd gam = gamma_toa(tau_s, cfg.subcarrier_spacing_hz);
  CVec s(ms * ls);
  const auto& bk = linalg::backend::active();
  cxd gl{1.0, 0.0};
  for (index_t l = 0; l < ls; ++l) {
    // s[l*ms + m] = gl * lam^m: one backend phase recurrence per
    // subcarrier block, scaled by the running ToA factor.
    bk.phase_ramp(gl, lam, ms, s.data() + l * ms);
    gl *= gam;
  }
  return s;
}

CMat steering_matrix_aoa(const Grid& aoa_grid_deg, const ArrayConfig& cfg) {
  CMat a(cfg.num_antennas, aoa_grid_deg.size());
  for (index_t i = 0; i < aoa_grid_deg.size(); ++i) {
    a.set_col(i, steering_aoa(aoa_grid_deg[i], cfg));
  }
  return a;
}

CMat steering_matrix_toa(const Grid& toa_grid_s, const ArrayConfig& cfg) {
  const index_t l = cfg.num_subcarriers;
  CMat a(l, toa_grid_s.size());
  const auto& bk = linalg::backend::active();
  for (index_t j = 0; j < toa_grid_s.size(); ++j) {
    const cxd gam = gamma_toa(toa_grid_s[j], cfg.subcarrier_spacing_hz);
    bk.phase_ramp(cxd{1.0, 0.0}, gam, l, a.data() + j * l);
  }
  return a;
}

CMat steering_matrix_joint(const Grid& aoa_grid_deg, const Grid& toa_grid_s,
                           const ArrayConfig& cfg) {
  const index_t nth = aoa_grid_deg.size();
  const index_t ntau = toa_grid_s.size();
  CMat s(cfg.num_antennas * cfg.num_subcarriers, nth * ntau);
  for (index_t j = 0; j < ntau; ++j) {
    for (index_t i = 0; i < nth; ++i) {
      s.set_col(j * nth + i,
                steering_joint(aoa_grid_deg[i], toa_grid_s[j], cfg));
    }
  }
  return s;
}

}  // namespace roarray::dsp
