#include "dsp/sanitize.hpp"

#include <cmath>
#include <vector>

#include "dsp/steering.hpp"

namespace roarray::dsp {

using linalg::cxd;
using linalg::index_t;

SanitizeResult sanitize_csi(const CMat& csi, const ArrayConfig& cfg,
                            double rebias_delay_s) {
  cfg.validate();
  const index_t m = csi.rows();
  const index_t l = csi.cols();

  // Unwrap phase along subcarriers independently per antenna.
  std::vector<std::vector<double>> phase(static_cast<std::size_t>(m));
  for (index_t a = 0; a < m; ++a) {
    auto& row = phase[static_cast<std::size_t>(a)];
    row.resize(static_cast<std::size_t>(l));
    double prev = std::arg(csi(a, 0));
    row[0] = prev;
    for (index_t s = 1; s < l; ++s) {
      double p = std::arg(csi(a, s));
      // Unwrap: keep successive differences within (-pi, pi].
      while (p - prev > kPi) p -= 2.0 * kPi;
      while (p - prev < -kPi) p += 2.0 * kPi;
      row[static_cast<std::size_t>(s)] = p;
      prev = p;
    }
  }

  // Common least-squares slope across subcarriers (per-antenna intercepts
  // are free, so only deviations from each antenna's mean matter).
  const double l_mean = static_cast<double>(l - 1) / 2.0;
  double num = 0.0;
  double den = 0.0;
  for (index_t a = 0; a < m; ++a) {
    double p_mean = 0.0;
    const auto& row = phase[static_cast<std::size_t>(a)];
    for (index_t s = 0; s < l; ++s) p_mean += row[static_cast<std::size_t>(s)];
    p_mean /= static_cast<double>(l);
    for (index_t s = 0; s < l; ++s) {
      const double dl = static_cast<double>(s) - l_mean;
      num += dl * (row[static_cast<std::size_t>(s)] - p_mean);
      den += dl * dl;
    }
  }
  const double slope = den > 0.0 ? num / den : 0.0;  // radians per subcarrier

  // slope = -2 pi f_delta * delay  =>  delay implied by the fit:
  const double fitted_delay = -slope / (2.0 * kPi * cfg.subcarrier_spacing_hz);

  SanitizeResult out;
  out.removed_delay_s = fitted_delay - rebias_delay_s;

  // Multiply subcarrier s by exp(+j 2 pi f_delta s * removed_delay).
  const cxd step = std::polar(
      1.0, 2.0 * kPi * cfg.subcarrier_spacing_hz * out.removed_delay_s);
  out.csi = csi;
  cxd rot{1.0, 0.0};
  for (index_t s = 0; s < l; ++s) {
    for (index_t a = 0; a < m; ++a) out.csi(a, s) *= rot;
    rot *= step;
  }
  return out;
}

}  // namespace roarray::dsp
