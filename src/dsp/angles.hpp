// Angle utilities (degrees-first, matching the paper's conventions).
#pragma once

#include <cmath>

#include "dsp/constants.hpp"
#include "dsp/grid.hpp"

namespace roarray::dsp {

/// Wraps an angle to [0, 360) degrees.
[[nodiscard]] inline double wrap_deg_360(double deg) noexcept {
  double w = std::fmod(deg, 360.0);
  if (w < 0.0) w += 360.0;
  return w;
}

/// Wraps an angle to (-180, 180] degrees.
[[nodiscard]] inline double wrap_deg_180(double deg) noexcept {
  double w = wrap_deg_360(deg);
  if (w > 180.0) w -= 360.0;
  return w;
}

/// Absolute angular difference in degrees, in [0, 180].
[[nodiscard]] inline double angle_diff_deg(double a, double b) noexcept {
  return std::abs(wrap_deg_180(a - b));
}

/// Folds an arbitrary bearing into the ULA's unambiguous AoA range
/// [0, 180]: a linear array cannot distinguish a source at +x from one
/// mirrored across the array axis.
[[nodiscard]] inline double fold_to_ula_range(double deg) noexcept {
  double w = wrap_deg_360(deg);
  if (w > 180.0) w = 360.0 - w;
  return w;
}

/// Separation between two folded AoAs, accounting for the endfire
/// ambiguity: at half-wavelength element spacing a(0 deg) == a(180 deg)
/// exactly (the per-element phases coincide mod 2pi), so 2 deg and
/// 178 deg are physically 4 deg apart, not 176. Inputs are folded to
/// [0, 180] first; the result is in [0, 90].
[[nodiscard]] inline double folded_aoa_separation_deg(double a,
                                                      double b) noexcept {
  const double d = std::abs(fold_to_ula_range(a) - fold_to_ula_range(b));
  return std::min(d, 180.0 - d);
}

/// Circular index period of an AoA sampling grid, or 0 when the grid is
/// not circular. A grid spanning the full [0, 180] fold range at exact
/// half-wavelength spacing has identical steering vectors at its two
/// endpoints, making the index space circular with period size() - 1
/// (the endpoints are the same atom). Off half-wavelength spacing, or
/// on a partial grid, the endpoints are distinct and 0 is returned.
[[nodiscard]] inline index_t aoa_wrap_period(const Grid& grid,
                                             const ArrayConfig& array) noexcept {
  constexpr double kEps = 1e-9;
  if (grid.size() < 3) return 0;
  if (std::abs(grid.lo()) > kEps || std::abs(grid.hi() - 180.0) > kEps) return 0;
  if (std::abs(array.spacing_over_wavelength() - 0.5) > kEps) return 0;
  return grid.size() - 1;
}

}  // namespace roarray::dsp
