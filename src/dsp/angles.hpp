// Angle utilities (degrees-first, matching the paper's conventions).
#pragma once

#include <cmath>

#include "dsp/constants.hpp"

namespace roarray::dsp {

/// Wraps an angle to [0, 360) degrees.
[[nodiscard]] inline double wrap_deg_360(double deg) noexcept {
  double w = std::fmod(deg, 360.0);
  if (w < 0.0) w += 360.0;
  return w;
}

/// Wraps an angle to (-180, 180] degrees.
[[nodiscard]] inline double wrap_deg_180(double deg) noexcept {
  double w = wrap_deg_360(deg);
  if (w > 180.0) w -= 360.0;
  return w;
}

/// Absolute angular difference in degrees, in [0, 180].
[[nodiscard]] inline double angle_diff_deg(double a, double b) noexcept {
  return std::abs(wrap_deg_180(a - b));
}

/// Folds an arbitrary bearing into the ULA's unambiguous AoA range
/// [0, 180]: a linear array cannot distinguish a source at +x from one
/// mirrored across the array axis.
[[nodiscard]] inline double fold_to_ula_range(double deg) noexcept {
  double w = wrap_deg_360(deg);
  if (w > 180.0) w = 360.0 - w;
  return w;
}

}  // namespace roarray::dsp
