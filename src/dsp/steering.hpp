// Steering vectors and matrices (paper Eq. 1, 2, 6, 12, 13, 16).
#pragma once

#include "dsp/constants.hpp"
#include "dsp/grid.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace roarray::dsp {

using linalg::CMat;
using linalg::CVec;
using linalg::cxd;

/// Per-antenna phase ratio Lambda(theta) = exp(-j 2 pi (d/lambda) cos theta)
/// (paper Eq. 1). theta in degrees.
[[nodiscard]] cxd lambda_aoa(double theta_deg, double spacing_over_wavelength);

/// Per-subcarrier phase ratio Gamma(tau) = exp(-j 2 pi f_delta tau)
/// (paper Eq. 12). tau in seconds.
[[nodiscard]] cxd gamma_toa(double tau_s, double subcarrier_spacing_hz);

/// Spatial steering vector s(theta) = [1, Lambda, ..., Lambda^(M-1)]^T
/// (paper Eq. 1).
[[nodiscard]] CVec steering_aoa(double theta_deg, const ArrayConfig& cfg);

/// Joint AoA/ToA steering vector over all antennas and subcarriers
/// (paper Eq. 13). Element ordering is antenna-fastest, i.e. index
/// l * M + m holds Lambda^m * Gamma^l, matching the CSI stacking of
/// Eq. 15: [csi_{1,1}, csi_{2,1}, csi_{3,1}, csi_{1,2}, ...].
[[nodiscard]] CVec steering_joint(double theta_deg, double tau_s,
                                  const ArrayConfig& cfg);

/// Spatial steering factor A_theta (M x N_theta): column i is
/// steering_aoa(grid[i]). This is the "S-tilde" of paper Eq. 6.
[[nodiscard]] CMat steering_matrix_aoa(const Grid& aoa_grid_deg,
                                       const ArrayConfig& cfg);

/// Frequency steering factor A_tau (L x N_tau): column j is
/// [1, Gamma(tau_j), ..., Gamma(tau_j)^(L-1)]^T.
[[nodiscard]] CMat steering_matrix_toa(const Grid& toa_grid_s,
                                       const ArrayConfig& cfg);

/// Dense joint steering matrix of paper Eq. 16, size (M*L) x (Nth*Ntau),
/// column (j * Nth + i) = steering_joint(aoa[i], toa[j]). Equal to the
/// Kronecker product A_tau (x) A_theta. Intended for tests and small
/// problems; solvers should use the structured operator instead.
[[nodiscard]] CMat steering_matrix_joint(const Grid& aoa_grid_deg,
                                         const Grid& toa_grid_s,
                                         const ArrayConfig& cfg);

/// Truncated joint steering vector / matrices for a sub-array of
/// ms antennas and ls subcarriers (used by SpotFi-style smoothing).
[[nodiscard]] CVec steering_joint_sub(double theta_deg, double tau_s,
                                      const ArrayConfig& cfg,
                                      linalg::index_t ms, linalg::index_t ls);

}  // namespace roarray::dsp
