// Radix-2 FFT and the channel power-delay profile — the time-domain
// view of CSI that complements the model-based ToA estimates.
#pragma once

#include "dsp/constants.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace roarray::dsp {

using linalg::CMat;
using linalg::CVec;
using linalg::RVec;

/// In-place iterative radix-2 FFT. x.size() must be a power of two
/// (throws std::invalid_argument otherwise). Forward transform uses the
/// e^{-j 2 pi k n / N} kernel; no normalization.
void fft_inplace(CVec& x);

/// Inverse FFT with 1/N normalization (ifft(fft(x)) == x).
void ifft_inplace(CVec& x);

/// Next power of two >= n (n >= 1).
[[nodiscard]] linalg::index_t next_pow2(linalg::index_t n);

/// The power-delay profile of a CSI measurement: per-antenna IFFT of the
/// subcarrier response (zero-padded to nfft, averaged over antennas),
/// giving |h(tau)|^2 sampled at delays k / (nfft * f_delta).
struct PowerDelayProfile {
  RVec delays_s;  ///< nfft delay bins.
  RVec power;     ///< average |h|^2 per bin, normalized to peak 1.
};

/// Computes the PDP from an M x L CSI matrix. nfft <= 0 selects the
/// next power of two >= 4 L (4x zero-pad interpolation).
[[nodiscard]] PowerDelayProfile power_delay_profile(const CMat& csi,
                                                    const ArrayConfig& cfg,
                                                    linalg::index_t nfft = -1);

}  // namespace roarray::dsp
