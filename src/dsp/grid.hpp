// Uniform sampling grids used to parameterize AoA / ToA search spaces.
#pragma once

#include <cmath>
#include <stdexcept>

#include "linalg/types.hpp"
#include "linalg/vector.hpp"

namespace roarray::dsp {

using linalg::index_t;
using linalg::RVec;

/// An equally spaced sampling grid over [lo, hi] with n points
/// (inclusive of both endpoints when n >= 2).
///
/// This is the "sparse grid" the paper parameterizes steering vectors
/// over: e.g. Grid(0, 180, 181) is the 1-degree AoA grid.
class Grid {
 public:
  Grid() = default;

  Grid(double lo, double hi, index_t n) : lo_(lo), hi_(hi), n_(n) {
    if (n < 1) throw std::invalid_argument("Grid: need at least one point");
    if (hi < lo) throw std::invalid_argument("Grid: hi < lo");
    step_ = (n > 1) ? (hi - lo) / static_cast<double>(n - 1) : 0.0;
  }

  /// Convenience: grid from lo to hi with the given step (hi included if
  /// it lands on the grid; otherwise the last point is the largest grid
  /// point <= hi).
  [[nodiscard]] static Grid with_step(double lo, double hi, double step) {
    if (step <= 0.0) throw std::invalid_argument("Grid: step must be positive");
    if (hi < lo) {
      // Without this check the computed point count goes non-positive
      // and the constructor's "need at least one point" hides the real
      // mistake.
      throw std::invalid_argument("Grid::with_step: hi must be >= lo");
    }
    const auto n = static_cast<index_t>(std::floor((hi - lo) / step + 1e-9)) + 1;
    return Grid(lo, lo + static_cast<double>(n - 1) * step, n);
  }

  [[nodiscard]] index_t size() const noexcept { return n_; }
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] double step() const noexcept { return step_; }

  /// Value of the i-th grid point.
  [[nodiscard]] double operator[](index_t i) const noexcept {
    return lo_ + static_cast<double>(i) * step_;
  }

  /// Bounds-checked grid point.
  [[nodiscard]] double at(index_t i) const {
    if (i < 0 || i >= n_) throw std::out_of_range("Grid::at");
    return (*this)[i];
  }

  /// Index of the grid point nearest to value (clamped to the range).
  [[nodiscard]] index_t nearest_index(double value) const {
    if (n_ == 1 || step_ == 0.0) return 0;
    const double raw = (value - lo_) / step_;
    const auto idx = static_cast<index_t>(std::lround(raw));
    return std::max<index_t>(0, std::min<index_t>(n_ - 1, idx));
  }

  /// All grid values as a vector.
  [[nodiscard]] RVec values() const {
    RVec v(n_);
    for (index_t i = 0; i < n_; ++i) v[i] = (*this)[i];
    return v;
  }

 private:
  double lo_ = 0.0;
  double hi_ = 0.0;
  index_t n_ = 1;
  double step_ = 0.0;
};

/// The paper's default AoA grid: [0, 180] degrees, 2-degree spacing.
[[nodiscard]] inline Grid default_aoa_grid() { return Grid(0.0, 180.0, 91); }

/// The paper's default ToA grid: [0, 800] ns (Nt = 50 points), matching
/// tau_max = 1/f_delta for the Intel 5300 40 MHz configuration.
[[nodiscard]] inline Grid default_toa_grid() { return Grid(0.0, 784e-9, 50); }

}  // namespace roarray::dsp
