#include "dsp/spectrum.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace roarray::dsp {

namespace {

/// Index separation between two samples, circular when period > 0
/// (the fold-aliased AoA grid: its first and last sample are the same
/// atom, so distance wraps around the period).
index_t index_separation(index_t a, index_t b, index_t period) {
  index_t d = std::abs(a - b);
  if (period > 0) d = std::min(d, period - d);
  return d;
}

}  // namespace

void Spectrum1d::normalize() {
  double mx = 0.0;
  for (index_t i = 0; i < values.size(); ++i) mx = std::max(mx, values[i]);
  if (mx <= 0.0) return;
  for (index_t i = 0; i < values.size(); ++i) values[i] /= mx;
}

std::vector<Peak> Spectrum1d::find_peaks(index_t max_peaks,
                                         double min_rel_height,
                                         index_t min_separation,
                                         index_t wrap_period) const {
  std::vector<Peak> candidates;
  const index_t n = values.size();
  double mx = 0.0;
  for (index_t i = 0; i < n; ++i) mx = std::max(mx, values[i]);
  if (mx <= 0.0) return candidates;
  const double floor_v = min_rel_height * mx;

  for (index_t i = 0; i < n; ++i) {
    const double v = values[i];
    if (v < floor_v) continue;
    const bool left_ok = (i == 0) || values[i - 1] <= v;
    const bool right_ok = (i == n - 1) || values[i + 1] < v;
    if (!(left_ok && right_ok)) continue;
    Peak p;
    p.value = v;
    p.aoa_index = i;
    p.aoa_deg = grid[i];
    candidates.push_back(p);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Peak& a, const Peak& b) { return a.value > b.value; });

  std::vector<Peak> out;
  for (const Peak& c : candidates) {
    if (static_cast<index_t>(out.size()) >= max_peaks) break;
    const bool too_close = std::any_of(out.begin(), out.end(), [&](const Peak& o) {
      return index_separation(o.aoa_index, c.aoa_index, wrap_period) <
             min_separation;
    });
    if (!too_close) out.push_back(c);
  }
  return out;
}

void Spectrum2d::normalize() {
  const double mx = norm_max(values);
  if (mx <= 0.0) return;
  for (index_t j = 0; j < values.cols(); ++j)
    for (index_t i = 0; i < values.rows(); ++i) values(i, j) /= mx;
}

std::vector<Peak> Spectrum2d::find_peaks(index_t max_peaks,
                                         double min_rel_height,
                                         index_t min_sep_aoa,
                                         index_t min_sep_toa,
                                         index_t aoa_wrap_period) const {
  std::vector<Peak> candidates;
  const index_t ni = values.rows();
  const index_t nj = values.cols();
  const double mx = norm_max(values);
  if (mx <= 0.0) return candidates;
  const double floor_v = min_rel_height * mx;

  for (index_t j = 0; j < nj; ++j) {
    for (index_t i = 0; i < ni; ++i) {
      const double v = values(i, j);
      if (v < floor_v) continue;
      bool is_max = true;
      for (index_t dj = -1; dj <= 1 && is_max; ++dj) {
        for (index_t di = -1; di <= 1; ++di) {
          if (di == 0 && dj == 0) continue;
          const index_t ii = i + di;
          const index_t jj = j + dj;
          if (ii < 0 || ii >= ni || jj < 0 || jj >= nj) continue;
          // Strictly-greater on the "later" side breaks plateau ties.
          const double w = values(ii, jj);
          const bool later = (dj > 0) || (dj == 0 && di > 0);
          if (later ? (w >= v) : (w > v)) {
            is_max = false;
            break;
          }
        }
      }
      if (!is_max) continue;
      Peak p;
      p.value = v;
      p.aoa_index = i;
      p.toa_index = j;
      p.aoa_deg = aoa_grid[i];
      p.toa_s = toa_grid[j];
      candidates.push_back(p);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Peak& a, const Peak& b) { return a.value > b.value; });

  std::vector<Peak> out;
  for (const Peak& c : candidates) {
    if (static_cast<index_t>(out.size()) >= max_peaks) break;
    const bool too_close = std::any_of(out.begin(), out.end(), [&](const Peak& o) {
      return index_separation(o.aoa_index, c.aoa_index, aoa_wrap_period) <
                 min_sep_aoa &&
             std::abs(o.toa_index - c.toa_index) < min_sep_toa;
    });
    if (!too_close) out.push_back(c);
  }
  return out;
}

Spectrum1d Spectrum2d::aoa_marginal() const {
  Spectrum1d s;
  s.grid = aoa_grid;
  s.values = RVec(values.rows());
  for (index_t i = 0; i < values.rows(); ++i) {
    double mx = 0.0;
    for (index_t j = 0; j < values.cols(); ++j) mx = std::max(mx, values(i, j));
    s.values[i] = mx;
  }
  return s;
}

}  // namespace roarray::dsp
