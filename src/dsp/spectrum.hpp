// Spectra (1-D AoA, 2-D AoA/ToA) and peak extraction.
#pragma once

#include <vector>

#include "dsp/grid.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace roarray::dsp {

using linalg::index_t;
using linalg::RMat;
using linalg::RVec;

/// One detected spectrum peak.
struct Peak {
  double value = 0.0;     ///< spectrum power at the peak (post-normalization).
  double aoa_deg = 0.0;   ///< AoA grid coordinate of the peak.
  double toa_s = 0.0;     ///< ToA grid coordinate (0 for 1-D spectra).
  index_t aoa_index = 0;
  index_t toa_index = 0;
};

/// A 1-D power spectrum sampled on a grid (typically AoA in degrees).
struct Spectrum1d {
  Grid grid;    ///< sample coordinates.
  RVec values;  ///< non-negative powers, same length as grid.

  /// Scales so the maximum equals 1 (no-op on an all-zero spectrum).
  void normalize();

  /// Local maxima above `min_rel_height` * max, separated by at least
  /// `min_separation` samples, sorted by descending power, at most
  /// `max_peaks` of them. A positive `wrap_period` declares the index
  /// space circular with that period (see dsp::aoa_wrap_period): the
  /// suppression distance between accepted peaks is then the circular
  /// one, so peaks straddling the grid edge measure as close.
  [[nodiscard]] std::vector<Peak> find_peaks(index_t max_peaks,
                                             double min_rel_height = 0.05,
                                             index_t min_separation = 1,
                                             index_t wrap_period = 0) const;
};

/// A 2-D power spectrum over (AoA, ToA), values(i, j) at
/// (aoa_grid[i], toa_grid[j]).
struct Spectrum2d {
  Grid aoa_grid;  ///< degrees.
  Grid toa_grid;  ///< seconds.
  RMat values;    ///< aoa_grid.size() x toa_grid.size().

  void normalize();

  /// 8-neighborhood local maxima above `min_rel_height` * max, sorted by
  /// descending power, greedily suppressing peaks within
  /// `min_sep_aoa`/`min_sep_toa` samples of an already accepted one.
  /// A positive `aoa_wrap_period` makes the AoA suppression distance
  /// circular with that period (the full [0, 180] grid at exact
  /// half-wavelength spacing aliases its endpoints; see
  /// dsp::aoa_wrap_period), so peaks straddling the fold boundary are
  /// correctly recognized as near-duplicates.
  [[nodiscard]] std::vector<Peak> find_peaks(index_t max_peaks,
                                             double min_rel_height = 0.05,
                                             index_t min_sep_aoa = 1,
                                             index_t min_sep_toa = 1,
                                             index_t aoa_wrap_period = 0) const;

  /// Marginalizes over ToA (max over tau) to obtain an AoA spectrum.
  [[nodiscard]] Spectrum1d aoa_marginal() const;
};

}  // namespace roarray::dsp
