// CSI sanitization: removes the per-packet linear phase slope across
// subcarriers introduced by the packet detection delay (and symbol
// timing offset), so that packets become coherently fusable.
#pragma once

#include "dsp/constants.hpp"
#include "linalg/matrix.hpp"

namespace roarray::dsp {

using linalg::CMat;

/// Result of sanitizing one CSI matrix.
struct SanitizeResult {
  CMat csi;                 ///< detrended (and re-biased) CSI.
  double removed_delay_s = 0.0;  ///< the common delay that was removed.
};

/// Estimates the common linear phase slope across subcarriers (shared by
/// all antennas, intercept free per antenna so AoA phases are preserved)
/// and removes it. Because the slope estimate absorbs the *mean* ToA as
/// well as the detection delay, `rebias_delay_s` is added back so that
/// all paths keep positive, unwrapped ToAs with the direct path near the
/// bias value (default 100 ns). After sanitization every packet of a
/// burst shares the same effective delay, enabling coherent fusion.
///
/// Aliasing limit: the per-subcarrier phase step is only unambiguous for
/// mean delays below 1 / (2 f_delta) (400 ns for the Intel 5300 setup);
/// larger delays fold onto the wrong branch. Real detection delays are
/// tens of nanoseconds, well inside the limit.
[[nodiscard]] SanitizeResult sanitize_csi(const CMat& csi,
                                          const ArrayConfig& cfg,
                                          double rebias_delay_s = 100e-9);

}  // namespace roarray::dsp
