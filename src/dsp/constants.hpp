// Physical constants and the radio front-end description used throughout.
#pragma once

#include <numbers>
#include <stdexcept>

#include "linalg/types.hpp"

namespace roarray::dsp {

using linalg::index_t;

/// Speed of light in vacuum [m/s].
inline constexpr double kSpeedOfLight = 299'792'458.0;

inline constexpr double kPi = std::numbers::pi;

/// Degrees -> radians.
[[nodiscard]] constexpr double deg_to_rad(double deg) noexcept {
  return deg * kPi / 180.0;
}

/// Radians -> degrees.
[[nodiscard]] constexpr double rad_to_deg(double rad) noexcept {
  return rad * 180.0 / kPi;
}

/// Description of a CSI-reporting WiFi front end attached to a uniform
/// linear antenna array. Defaults model the Intel 5300 setup the paper
/// uses: 3 antennas at half-wavelength spacing on the 5 GHz band
/// (lambda = 5.2 cm, d = 2.6 cm), 30 reported subcarriers on a 40 MHz
/// channel where the CSI tool reports every 4th subcarrier, giving an
/// effective subcarrier spacing of 1.25 MHz and an unambiguous ToA range
/// of 1/f_delta = 800 ns.
struct ArrayConfig {
  index_t num_antennas = 3;         ///< M.
  index_t num_subcarriers = 30;     ///< L.
  double wavelength_m = 0.052;      ///< lambda of the carrier.
  double antenna_spacing_m = 0.026; ///< d, must be <= lambda/2 for no aliasing.
  double subcarrier_spacing_hz = 1.25e6;  ///< f_delta between reported subcarriers.

  /// d / lambda — the only array quantity the steering phase needs.
  [[nodiscard]] double spacing_over_wavelength() const noexcept {
    return antenna_spacing_m / wavelength_m;
  }

  /// Carrier frequency implied by the wavelength.
  [[nodiscard]] double carrier_hz() const noexcept {
    return kSpeedOfLight / wavelength_m;
  }

  /// Largest unambiguous ToA, 1 / f_delta.
  [[nodiscard]] double max_unambiguous_toa_s() const noexcept {
    return 1.0 / subcarrier_spacing_hz;
  }

  /// Validates physical sanity; throws std::invalid_argument on failure.
  void validate() const {
    if (num_antennas < 1) throw std::invalid_argument("ArrayConfig: num_antennas < 1");
    if (num_subcarriers < 1) {
      throw std::invalid_argument("ArrayConfig: num_subcarriers < 1");
    }
    if (wavelength_m <= 0.0 || antenna_spacing_m <= 0.0) {
      throw std::invalid_argument("ArrayConfig: non-positive geometry");
    }
    if (antenna_spacing_m > wavelength_m / 2.0 + 1e-12) {
      throw std::invalid_argument(
          "ArrayConfig: antenna spacing > lambda/2 causes AoA ambiguity");
    }
    if (subcarrier_spacing_hz <= 0.0) {
      throw std::invalid_argument("ArrayConfig: non-positive subcarrier spacing");
    }
  }
};

/// The Intel 5300 configuration used in the paper's experiments.
[[nodiscard]] inline ArrayConfig intel5300_config() { return ArrayConfig{}; }

}  // namespace roarray::dsp
