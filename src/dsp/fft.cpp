#include "dsp/fft.hpp"

#include <cmath>
#include <stdexcept>

namespace roarray::dsp {

using linalg::cxd;
using linalg::index_t;

namespace {

bool is_pow2(index_t n) { return n > 0 && (n & (n - 1)) == 0; }

/// Core iterative Cooley-Tukey butterfly; sign = -1 forward, +1 inverse.
void transform(CVec& x, double sign) {
  const index_t n = x.size();
  if (!is_pow2(n)) {
    throw std::invalid_argument("fft: size must be a power of two");
  }
  // Bit-reversal permutation.
  for (index_t i = 1, j = 0; i < n; ++i) {
    index_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
  for (index_t len = 2; len <= n; len <<= 1) {
    const double ang = sign * 2.0 * kPi / static_cast<double>(len);
    const cxd wlen = std::polar(1.0, ang);
    for (index_t i = 0; i < n; i += len) {
      cxd w{1.0, 0.0};
      for (index_t k = 0; k < len / 2; ++k) {
        const cxd u = x[i + k];
        const cxd v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

}  // namespace

void fft_inplace(CVec& x) { transform(x, -1.0); }

void ifft_inplace(CVec& x) {
  transform(x, +1.0);
  const cxd scale{1.0 / static_cast<double>(x.size()), 0.0};
  for (index_t i = 0; i < x.size(); ++i) x[i] *= scale;
}

index_t next_pow2(index_t n) {
  if (n < 1) throw std::invalid_argument("next_pow2: n must be >= 1");
  index_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

PowerDelayProfile power_delay_profile(const CMat& csi, const ArrayConfig& cfg,
                                      index_t nfft) {
  cfg.validate();
  const index_t l = csi.cols();
  if (l < 1) throw std::invalid_argument("power_delay_profile: empty CSI");
  if (nfft <= 0) nfft = next_pow2(4 * l);
  if (!is_pow2(nfft) || nfft < l) {
    throw std::invalid_argument(
        "power_delay_profile: nfft must be a power of two >= L");
  }

  PowerDelayProfile out;
  out.delays_s = RVec(nfft);
  out.power = RVec(nfft);
  const double bin = 1.0 / (static_cast<double>(nfft) * cfg.subcarrier_spacing_hz);
  for (index_t k = 0; k < nfft; ++k) out.delays_s[k] = static_cast<double>(k) * bin;

  for (index_t a = 0; a < csi.rows(); ++a) {
    CVec f(nfft);
    for (index_t s = 0; s < l; ++s) f[s] = csi(a, s);
    // Gamma(tau) = e^{-j 2 pi f_delta tau s}: the *inverse* transform
    // maps the subcarrier ramp to a spike at bin tau / bin_width.
    ifft_inplace(f);
    for (index_t k = 0; k < nfft; ++k) out.power[k] += std::norm(f[k]);
  }
  double mx = 0.0;
  for (index_t k = 0; k < nfft; ++k) mx = std::max(mx, out.power[k]);
  if (mx > 0.0) {
    for (index_t k = 0; k < nfft; ++k) out.power[k] /= mx;
  }
  return out;
}

}  // namespace roarray::dsp
