#!/usr/bin/env bash
# CI entry point: builds and tests the Release configuration, then the
# AddressSanitizer+UBSan configuration (CMake presets "default" and
# "asan-ubsan", the latter with detect_leaks=1). The sanitizer leg
# reruns the whole ctest suite with a multi-threaded runtime
# (ROARRAY_THREADS) so data races and lifetime bugs in the pool/cache
# layer surface under instrumentation. The repo-invariant linter
# (tools/roarray_lint) runs inside every ctest pass (label: lint).
#
# Usage:
#   scripts/ci.sh [jobs]              full CI (Release + bench smoke + ASan)
#   scripts/ci.sh --soak [sec] [jobs] nightly property soak: reruns the
#                                     proptest suites with randomized base
#                                     seeds until the wall-clock budget
#                                     (default 600 s) runs out. A failure
#                                     prints the ROARRAY_PROPTEST_SEED line
#                                     that replays the exact counterexample.
#   scripts/ci.sh --coverage [jobs]   report-only gcov leg: builds with
#                                     --coverage, runs the suite, writes a
#                                     per-file line-coverage summary to
#                                     build-cov/coverage.txt. Never fails
#                                     the build.
#   scripts/ci.sh --tsan [jobs]       ThreadSanitizer leg: builds the
#                                     build-tsan preset and reruns the
#                                     suite with a multi-threaded runtime
#                                     so the contended cache/pool tests
#                                     run instrumented. Skips (exit 0)
#                                     when the toolchain cannot link
#                                     -fsanitize=thread; any TSan report
#                                     fails the leg.
#   scripts/ci.sh --backends [jobs]   forced-backend leg: reruns the
#                                     tier-1 suite plus the bench smoke
#                                     once per compute backend
#                                     (ROARRAY_BACKEND=scalar and
#                                     =simd). The simd pass is skipped
#                                     (exit 0) when dispatch reports the
#                                     binary has no SIMD table for this
#                                     machine — probe via
#                                     micro_benchmarks --backend-info.
#   scripts/ci.sh --serve-smoke [jobs] record a small CSI trace, replay
#                                     it through the localization
#                                     service via bench/serve_throughput,
#                                     and check BENCH_serve.json parses
#                                     with nonzero sustained throughput
#                                     in both serving modes. Also runs
#                                     inside the full leg.
#   scripts/ci.sh --analyze [jobs]    semantic-analyzer leg: builds
#                                     tools/roarray_analyze, runs its
#                                     fixture self-test, then runs the
#                                     include-layering / lock-order /
#                                     hot-alloc rules over src/ against
#                                     the specs in tools/roarray_analyze/.
#                                     Never skips — the tool is std-only
#                                     and builds wherever the library
#                                     does; any finding exits nonzero.
#                                     Also runs inside the full leg,
#                                     ahead of the build.
#   scripts/ci.sh --tidy [jobs]       static-analysis leg: clang-tidy
#                                     over src/ with the committed
#                                     .clang-tidy (via the exported
#                                     compile_commands.json), plus a
#                                     clang build of the default preset
#                                     to enforce -Werror=thread-safety.
#                                     Each half skips (exit 0) when its
#                                     tool is not installed; findings
#                                     exit nonzero.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=full
SOAK_SECONDS=600
case "${1:-}" in
  --soak)
    MODE=soak
    shift
    if [[ "${1:-}" =~ ^[0-9]+$ ]]; then SOAK_SECONDS="$1"; shift; fi
    ;;
  --coverage)
    MODE=coverage
    shift
    ;;
  --tsan)
    MODE=tsan
    shift
    ;;
  --tidy)
    MODE=tidy
    shift
    ;;
  --analyze)
    MODE=analyze
    shift
    ;;
  --backends)
    MODE=backends
    shift
    ;;
  --serve-smoke)
    MODE=serve_smoke
    shift
    ;;
esac
JOBS="${1:-$(nproc)}"

# Records a small trace, replays it through LocalizationService in both
# serving modes plus a --shards 1,4 ShardedService sweep
# (bench/serve_throughput does the record+replay), and verifies
# BENCH_serve.json is well-formed with nonzero sustained throughput and
# that the dispatchers=0 replay was bit-identical between shards=1 and
# shards=4 (the replay_shards_identical flag — a hard correctness gate,
# unlike the scaling numbers). Assumes the default preset is built.
serve_smoke() {
  echo "== Serve smoke (record/replay + shard sweep + BENCH_serve.json) =="
  ./build/bench/serve_throughput --clients 4 --requests 16 --iterations 20 \
    --shards 1,4 --replay-requests 8 \
    --record build/BENCH_serve_trace.bin \
    --json build/BENCH_serve.json
  test -s build/BENCH_serve.json
  grep -q '"replay_shards_identical": true' build/BENCH_serve.json || {
    echo "serve smoke FAILED: sharded replay not bit-identical" >&2
    exit 1
  }
  if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
import json
with open("build/BENCH_serve.json") as f:
    report = json.load(f)
for mode in ("batch1", "dynamic"):
    rps = report[mode]["sustained_rps"]
    if not rps > 0.0:
        raise SystemExit(f"serve smoke FAILED: {mode}.sustained_rps = {rps}")
entries = report["shard_scaling"]
if [e["shards"] for e in entries] != [1, 4]:
    raise SystemExit("serve smoke FAILED: shard_scaling missing sweep entries")
for e in entries:
    if not e["sustained_rps"] > 0.0:
        raise SystemExit(
            f"serve smoke FAILED: shards={e['shards']} sustained_rps = "
            f"{e['sustained_rps']}")
print("serve smoke: JSON parses,",
      ", ".join(f"{m} {report[m]['sustained_rps']:.1f} req/s"
                for m in ("batch1", "dynamic")),
      "+ shards " + ", ".join(
          f"{e['shards']}x {e['sustained_rps']:.1f} req/s" for e in entries))
EOF
  else
    # Fallback without python3: a zero/absent rate never matches.
    grep -qE '"sustained_rps": *[0-9]*[1-9]' build/BENCH_serve.json || {
      echo "serve smoke FAILED: no nonzero sustained_rps in BENCH_serve.json" >&2
      exit 1
    }
    echo "serve smoke: BENCH_serve.json has nonzero sustained_rps (grep check)"
  fi
}

# Builds the source tools and runs the semantic analyzer (self-test
# first, then the committed src/ tree against the committed specs).
# Deliberately no graceful skip: the analyzer is std-only, so "cannot
# build the analyzer" is itself a CI failure.
analyze_gate() {
  echo "== Semantic analysis (tools/roarray_analyze) =="
  cmake --preset default >/dev/null
  cmake --build --preset default -j "${JOBS}" \
    --target roarray_analyze roarray_lint
  ./build/tools/roarray_analyze --self-test
  ./build/tools/roarray_analyze --spec-dir tools/roarray_analyze src
}

if [[ "$MODE" == analyze ]]; then
  analyze_gate
  echo "Analyze leg OK"
  exit 0
fi

if [[ "$MODE" == soak ]]; then
  echo "== Property soak (${SOAK_SECONDS}s wall-clock budget) =="
  cmake --preset default >/dev/null
  cmake --build --preset default -j "${JOBS}" --target test_proptest
  deadline=$((SECONDS + SOAK_SECONDS))
  rounds=0
  while ((SECONDS < deadline)); do
    remaining_ms=$(((deadline - SECONDS) * 1000))
    base_seed=$(od -An -N8 -tu8 /dev/urandom | tr -d ' ')
    rounds=$((rounds + 1))
    echo "-- soak round ${rounds}: ROARRAY_PROPTEST_BASE_SEED=${base_seed}"
    # More cases per property than tier-1; the per-process time budget
    # keeps the final round from overshooting the deadline.
    ROARRAY_PROPTEST_BASE_SEED="${base_seed}" \
    ROARRAY_PROPTEST_CASES=50 \
    ROARRAY_PROPTEST_TIME_MS="${remaining_ms}" \
      ./build/tests/test_proptest --gtest_brief=1
  done
  echo "Soak OK (${rounds} rounds)"
  exit 0
fi

if [[ "$MODE" == coverage ]]; then
  echo "== Coverage build (report-only) =="
  cmake -B build-cov -S . -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="--coverage" -DCMAKE_EXE_LINKER_FLAGS="--coverage" \
    >/dev/null
  cmake --build build-cov -j "${JOBS}"
  (cd build-cov && ctest --output-on-failure -j "${JOBS}") || true

  echo "== Coverage report (build-cov/coverage.txt) =="
  {
    echo "# Line coverage by source file (gcov, report-only)"
    echo "# Generated by scripts/ci.sh --coverage"
    find build-cov -name '*.gcda' | while read -r gcda; do
      gcov -n -s "$PWD" -r "$gcda" 2>/dev/null
    done | awk '
      /^File / { file = $2; gsub(/'\''/, "", file) }
      /^Lines executed:/ {
        split($0, a, ":"); split(a[2], b, "% of ")
        if (file != "" && file ~ /^(src|bench)\//) {
          pct[file] = b[1]; tot[file] = b[2]
        }
        file = ""
      }
      END {
        for (f in pct) printf "%7.2f%%  %6d lines  %s\n", pct[f], tot[f], f
      }' | sort -k3
  } > build-cov/coverage.txt || true
  wc -l build-cov/coverage.txt
  tail -n +3 build-cov/coverage.txt | head -40
  echo "Coverage leg done (report-only)"
  exit 0
fi

if [[ "$MODE" == tsan ]]; then
  echo "== ThreadSanitizer leg =="
  # Graceful skip when the toolchain cannot produce TSan binaries
  # (mirrors the tool-missing skips of --tidy): probe a trivial link.
  if ! echo 'int main(){}' | "${CXX:-c++}" -fsanitize=thread -x c++ - \
      -o /tmp/roarray_tsan_probe.$$ 2>/dev/null; then
    echo "TSan leg SKIPPED: ${CXX:-c++} cannot link -fsanitize=thread"
    exit 0
  fi
  rm -f /tmp/roarray_tsan_probe.$$
  cmake --preset build-tsan
  cmake --build --preset build-tsan -j "${JOBS}"
  # Multi-threaded runtime so the pool/cache actually contend; the test
  # preset sets halt_on_error=1, so any data-race report fails the leg.
  ROARRAY_THREADS=4 ctest --preset build-tsan -j "${JOBS}"
  echo "TSan leg OK"
  exit 0
fi

if [[ "$MODE" == tidy ]]; then
  echo "== Static-analysis leg (clang-tidy + clang thread-safety) =="
  ran_anything=0

  # Half 1: clang thread-safety analysis. The root CMakeLists adds
  # -Wthread-safety -Werror=thread-safety automatically under clang, so
  # a clang build of the default tree IS the gate.
  if command -v clang++ >/dev/null 2>&1; then
    ran_anything=1
    echo "-- clang -Werror=thread-safety build (build-clang-tsa)"
    cmake -B build-clang-tsa -S . -DCMAKE_CXX_COMPILER=clang++ \
      -DCMAKE_BUILD_TYPE=Release
    cmake --build build-clang-tsa -j "${JOBS}"
    echo "-- thread-safety analysis clean"
  else
    echo "-- thread-safety half SKIPPED: clang++ not installed"
  fi

  # Half 2: clang-tidy over every library TU with the committed profile.
  if command -v clang-tidy >/dev/null 2>&1; then
    ran_anything=1
    echo "-- clang-tidy over src/ (profile: .clang-tidy)"
    cmake --preset default >/dev/null   # exports compile_commands.json
    # xargs exits nonzero if any clang-tidy invocation reported findings
    # (WarningsAsErrors: '*' in .clang-tidy makes findings fatal).
    find src -name '*.cpp' -print0 |
      xargs -0 -P "${JOBS}" -n 4 clang-tidy -p build --quiet
    echo "-- clang-tidy clean"
  else
    echo "-- clang-tidy half SKIPPED: clang-tidy not installed"
  fi

  if [[ "$ran_anything" == 0 ]]; then
    echo "Static-analysis leg SKIPPED entirely (no clang toolchain)"
  else
    echo "Static-analysis leg OK"
  fi
  exit 0
fi

if [[ "$MODE" == backends ]]; then
  echo "== Forced-backend leg (ROARRAY_BACKEND=scalar, =simd) =="
  cmake --preset default >/dev/null
  cmake --build --preset default -j "${JOBS}"
  for be in scalar simd; do
    info=$(ROARRAY_BACKEND="$be" ./build/bench/micro_benchmarks --backend-info)
    echo "-- ROARRAY_BACKEND=${be}: ${info}"
    if [[ "$be" == simd && "$info" != *"selected=simd"* ]]; then
      # Graceful fallback (no SIMD TU in this build, or the CPU lacks
      # the vector units): nothing new to test under this forcing.
      echo "-- simd pass SKIPPED: dispatch fell back to scalar"
      continue
    fi
    ROARRAY_BACKEND="$be" ctest --preset default -j "${JOBS}"
    ROARRAY_BACKEND="$be" ./build/bench/micro_benchmarks --coarse-fine \
      --json "build/BENCH_micro_${be}.json"
    test -s "build/BENCH_micro_${be}.json"
    if grep -nE '"[a-z0-9_]*(identical|matches)[a-z0-9_]*": *false' \
        "build/BENCH_micro_${be}.json"; then
      echo "backends leg FAILED: identity flag false under ROARRAY_BACKEND=${be}" >&2
      exit 1
    fi
  done
  echo "Backends leg OK"
  exit 0
fi

if [[ "$MODE" == serve_smoke ]]; then
  cmake --preset default >/dev/null
  cmake --build --preset default -j "${JOBS}" --target serve_throughput
  serve_smoke
  echo "Serve smoke OK"
  exit 0
fi

analyze_gate

echo "== Release build =="
cmake --preset default
cmake --build --preset default -j "${JOBS}"

echo "== Release tests =="
ctest --preset default -j "${JOBS}"

echo "== Bench smoke (BENCH_micro.json identity flags) =="
# The JSON report checks every kernel fast path against its reference
# inline (blocked vs naive GEMM, batched vs per-column Kronecker apply,
# FISTA apply-reuse vs direct, cached vs per-call, parallel vs serial,
# and — with --coarse-fine — the coarse-to-fine factored solve vs the
# full-grid reference) and records the verdicts as *_identical_* /
# *_matches_* flags. Any false flag is a correctness regression, not a
# perf number — fail hard.
./build/bench/micro_benchmarks --coarse-fine --json build/BENCH_micro.json
test -s build/BENCH_micro.json  # the binary exits non-zero on write failure
if grep -nE '"[a-z0-9_]*(identical|matches)[a-z0-9_]*": *false' \
    build/BENCH_micro.json; then
  echo "bench smoke FAILED: an identity flag in BENCH_micro.json is false" >&2
  exit 1
fi

echo "== Bench smoke (robust-vs-naive fusion sweep) =="
# Small-scale run of the adversarial fusion sweep (bench/fig4_fusion):
# the robust path must not lose to the naive weighted grid argmin on
# clean data — on all-inlier rounds IRLS is bit-compatible with the
# weighted solve, so a false flag here is a correctness regression in
# the fusion layer, not a tuning issue. The blocked-AP improvement
# ratio is scale-sensitive and is gated on the committed full-scale
# BENCH_fusion.json instead.
./build/bench/fig4_fusion --locations 8 --json build/BENCH_fusion.json
test -s build/BENCH_fusion.json
if ! grep -q '"robust_no_worse_than_naive_clean": true' \
    build/BENCH_fusion.json; then
  echo "bench smoke FAILED: robust fusion lost to naive on clean data" >&2
  exit 1
fi

serve_smoke

echo "== ASan+UBSan build =="
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "${JOBS}"

echo "== ASan+UBSan tests (ROARRAY_THREADS=4) =="
ROARRAY_THREADS=4 ctest --preset asan-ubsan -j "${JOBS}"

echo "CI OK"
