#!/usr/bin/env bash
# CI entry point: builds and tests the Release configuration, then the
# AddressSanitizer+UBSan configuration (CMake presets "default" and
# "asan-ubsan"). The sanitizer leg reruns the whole ctest suite with a
# multi-threaded runtime (ROARRAY_THREADS) so data races and lifetime
# bugs in the pool/cache layer surface under instrumentation.
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "== Release build =="
cmake --preset default
cmake --build --preset default -j "${JOBS}"

echo "== Release tests =="
ctest --preset default -j "${JOBS}"

echo "== Bench smoke (BENCH_micro.json identity flags) =="
# The JSON report checks every kernel fast path against its reference
# inline (blocked vs naive GEMM, batched vs per-column Kronecker apply,
# FISTA apply-reuse vs direct, cached vs per-call, parallel vs serial)
# and records the verdicts as *_identical_* / *_matches_* flags. Any
# false flag is a correctness regression, not a perf number — fail hard.
./build/bench/micro_benchmarks --json build/BENCH_micro.json
test -s build/BENCH_micro.json  # the binary warns but exits 0 on write failure
if grep -nE '"[a-z0-9_]*(identical|matches)[a-z0-9_]*": *false' \
    build/BENCH_micro.json; then
  echo "bench smoke FAILED: an identity flag in BENCH_micro.json is false" >&2
  exit 1
fi

echo "== ASan+UBSan build =="
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "${JOBS}"

echo "== ASan+UBSan tests (ROARRAY_THREADS=4) =="
ROARRAY_THREADS=4 ctest --preset asan-ubsan -j "${JOBS}"

echo "CI OK"
