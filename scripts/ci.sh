#!/usr/bin/env bash
# CI entry point: builds and tests the Release configuration, then the
# AddressSanitizer+UBSan configuration (CMake presets "default" and
# "asan-ubsan"). The sanitizer leg reruns the whole ctest suite with a
# multi-threaded runtime (ROARRAY_THREADS) so data races and lifetime
# bugs in the pool/cache layer surface under instrumentation.
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "== Release build =="
cmake --preset default
cmake --build --preset default -j "${JOBS}"

echo "== Release tests =="
ctest --preset default -j "${JOBS}"

echo "== ASan+UBSan build =="
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "${JOBS}"

echo "== ASan+UBSan tests (ROARRAY_THREADS=4) =="
ROARRAY_THREADS=4 ctest --preset asan-ubsan -j "${JOBS}"

echo "CI OK"
