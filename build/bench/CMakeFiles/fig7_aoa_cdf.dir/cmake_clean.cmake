file(REMOVE_RECURSE
  "CMakeFiles/fig7_aoa_cdf.dir/fig7_aoa_cdf.cpp.o"
  "CMakeFiles/fig7_aoa_cdf.dir/fig7_aoa_cdf.cpp.o.d"
  "fig7_aoa_cdf"
  "fig7_aoa_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_aoa_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
