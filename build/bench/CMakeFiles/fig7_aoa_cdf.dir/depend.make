# Empty dependencies file for fig7_aoa_cdf.
# This may be replaced when dependencies are built.
