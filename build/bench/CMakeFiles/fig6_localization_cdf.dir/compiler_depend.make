# Empty compiler generated dependencies file for fig6_localization_cdf.
# This may be replaced when dependencies are built.
