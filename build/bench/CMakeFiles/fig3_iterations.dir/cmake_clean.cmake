file(REMOVE_RECURSE
  "CMakeFiles/fig3_iterations.dir/fig3_iterations.cpp.o"
  "CMakeFiles/fig3_iterations.dir/fig3_iterations.cpp.o.d"
  "fig3_iterations"
  "fig3_iterations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
