# Empty compiler generated dependencies file for fig3_iterations.
# This may be replaced when dependencies are built.
