# Empty dependencies file for fig2_music_snr.
# This may be replaced when dependencies are built.
