file(REMOVE_RECURSE
  "CMakeFiles/fig2_music_snr.dir/fig2_music_snr.cpp.o"
  "CMakeFiles/fig2_music_snr.dir/fig2_music_snr.cpp.o.d"
  "fig2_music_snr"
  "fig2_music_snr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_music_snr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
