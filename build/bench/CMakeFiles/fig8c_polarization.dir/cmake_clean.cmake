file(REMOVE_RECURSE
  "CMakeFiles/fig8c_polarization.dir/fig8c_polarization.cpp.o"
  "CMakeFiles/fig8c_polarization.dir/fig8c_polarization.cpp.o.d"
  "fig8c_polarization"
  "fig8c_polarization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8c_polarization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
