# Empty dependencies file for fig8c_polarization.
# This may be replaced when dependencies are built.
