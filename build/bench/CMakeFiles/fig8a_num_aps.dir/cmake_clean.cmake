file(REMOVE_RECURSE
  "CMakeFiles/fig8a_num_aps.dir/fig8a_num_aps.cpp.o"
  "CMakeFiles/fig8a_num_aps.dir/fig8a_num_aps.cpp.o.d"
  "fig8a_num_aps"
  "fig8a_num_aps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8a_num_aps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
