# Empty compiler generated dependencies file for fig8a_num_aps.
# This may be replaced when dependencies are built.
