file(REMOVE_RECURSE
  "CMakeFiles/fig8b_calibration.dir/fig8b_calibration.cpp.o"
  "CMakeFiles/fig8b_calibration.dir/fig8b_calibration.cpp.o.d"
  "fig8b_calibration"
  "fig8b_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8b_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
