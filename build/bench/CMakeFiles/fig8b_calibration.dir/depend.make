# Empty dependencies file for fig8b_calibration.
# This may be replaced when dependencies are built.
