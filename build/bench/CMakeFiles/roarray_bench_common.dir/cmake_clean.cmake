file(REMOVE_RECURSE
  "CMakeFiles/roarray_bench_common.dir/common.cpp.o"
  "CMakeFiles/roarray_bench_common.dir/common.cpp.o.d"
  "libroarray_bench_common.a"
  "libroarray_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roarray_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
