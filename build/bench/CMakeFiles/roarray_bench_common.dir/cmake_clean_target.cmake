file(REMOVE_RECURSE
  "libroarray_bench_common.a"
)
