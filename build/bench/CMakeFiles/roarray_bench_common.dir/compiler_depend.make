# Empty compiler generated dependencies file for roarray_bench_common.
# This may be replaced when dependencies are built.
