# Empty dependencies file for multi_packet_fusion.
# This may be replaced when dependencies are built.
