file(REMOVE_RECURSE
  "CMakeFiles/multi_packet_fusion.dir/multi_packet_fusion.cpp.o"
  "CMakeFiles/multi_packet_fusion.dir/multi_packet_fusion.cpp.o.d"
  "multi_packet_fusion"
  "multi_packet_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_packet_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
