# Empty dependencies file for phase_calibration.
# This may be replaced when dependencies are built.
