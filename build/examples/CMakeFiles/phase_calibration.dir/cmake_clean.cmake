file(REMOVE_RECURSE
  "CMakeFiles/phase_calibration.dir/phase_calibration.cpp.o"
  "CMakeFiles/phase_calibration.dir/phase_calibration.cpp.o.d"
  "phase_calibration"
  "phase_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
