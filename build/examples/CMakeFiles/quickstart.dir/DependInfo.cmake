
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/roarray_core.dir/DependInfo.cmake"
  "/root/repo/build/src/music/CMakeFiles/roarray_music.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/roarray_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/roarray_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/loc/CMakeFiles/roarray_loc.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/roarray_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/roarray_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/roarray_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/roarray_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
