# Empty dependencies file for channel_inspector.
# This may be replaced when dependencies are built.
