file(REMOVE_RECURSE
  "CMakeFiles/channel_inspector.dir/channel_inspector.cpp.o"
  "CMakeFiles/channel_inspector.dir/channel_inspector.cpp.o.d"
  "channel_inspector"
  "channel_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
