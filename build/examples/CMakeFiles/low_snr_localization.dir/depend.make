# Empty dependencies file for low_snr_localization.
# This may be replaced when dependencies are built.
