file(REMOVE_RECURSE
  "CMakeFiles/low_snr_localization.dir/low_snr_localization.cpp.o"
  "CMakeFiles/low_snr_localization.dir/low_snr_localization.cpp.o.d"
  "low_snr_localization"
  "low_snr_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/low_snr_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
