file(REMOVE_RECURSE
  "CMakeFiles/roarray_dsp.dir/fft.cpp.o"
  "CMakeFiles/roarray_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/roarray_dsp.dir/sanitize.cpp.o"
  "CMakeFiles/roarray_dsp.dir/sanitize.cpp.o.d"
  "CMakeFiles/roarray_dsp.dir/spectrum.cpp.o"
  "CMakeFiles/roarray_dsp.dir/spectrum.cpp.o.d"
  "CMakeFiles/roarray_dsp.dir/steering.cpp.o"
  "CMakeFiles/roarray_dsp.dir/steering.cpp.o.d"
  "libroarray_dsp.a"
  "libroarray_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roarray_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
