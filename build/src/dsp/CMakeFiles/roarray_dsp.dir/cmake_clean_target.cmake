file(REMOVE_RECURSE
  "libroarray_dsp.a"
)
