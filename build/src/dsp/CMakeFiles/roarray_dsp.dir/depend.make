# Empty dependencies file for roarray_dsp.
# This may be replaced when dependencies are built.
