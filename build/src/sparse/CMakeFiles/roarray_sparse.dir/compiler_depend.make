# Empty compiler generated dependencies file for roarray_sparse.
# This may be replaced when dependencies are built.
