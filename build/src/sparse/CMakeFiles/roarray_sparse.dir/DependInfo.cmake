
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/admm.cpp" "src/sparse/CMakeFiles/roarray_sparse.dir/admm.cpp.o" "gcc" "src/sparse/CMakeFiles/roarray_sparse.dir/admm.cpp.o.d"
  "/root/repo/src/sparse/fista.cpp" "src/sparse/CMakeFiles/roarray_sparse.dir/fista.cpp.o" "gcc" "src/sparse/CMakeFiles/roarray_sparse.dir/fista.cpp.o.d"
  "/root/repo/src/sparse/l1svd.cpp" "src/sparse/CMakeFiles/roarray_sparse.dir/l1svd.cpp.o" "gcc" "src/sparse/CMakeFiles/roarray_sparse.dir/l1svd.cpp.o.d"
  "/root/repo/src/sparse/omp.cpp" "src/sparse/CMakeFiles/roarray_sparse.dir/omp.cpp.o" "gcc" "src/sparse/CMakeFiles/roarray_sparse.dir/omp.cpp.o.d"
  "/root/repo/src/sparse/operator.cpp" "src/sparse/CMakeFiles/roarray_sparse.dir/operator.cpp.o" "gcc" "src/sparse/CMakeFiles/roarray_sparse.dir/operator.cpp.o.d"
  "/root/repo/src/sparse/power.cpp" "src/sparse/CMakeFiles/roarray_sparse.dir/power.cpp.o" "gcc" "src/sparse/CMakeFiles/roarray_sparse.dir/power.cpp.o.d"
  "/root/repo/src/sparse/reweighted.cpp" "src/sparse/CMakeFiles/roarray_sparse.dir/reweighted.cpp.o" "gcc" "src/sparse/CMakeFiles/roarray_sparse.dir/reweighted.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/roarray_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
