file(REMOVE_RECURSE
  "libroarray_sparse.a"
)
