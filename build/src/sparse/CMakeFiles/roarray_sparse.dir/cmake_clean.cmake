file(REMOVE_RECURSE
  "CMakeFiles/roarray_sparse.dir/admm.cpp.o"
  "CMakeFiles/roarray_sparse.dir/admm.cpp.o.d"
  "CMakeFiles/roarray_sparse.dir/fista.cpp.o"
  "CMakeFiles/roarray_sparse.dir/fista.cpp.o.d"
  "CMakeFiles/roarray_sparse.dir/l1svd.cpp.o"
  "CMakeFiles/roarray_sparse.dir/l1svd.cpp.o.d"
  "CMakeFiles/roarray_sparse.dir/omp.cpp.o"
  "CMakeFiles/roarray_sparse.dir/omp.cpp.o.d"
  "CMakeFiles/roarray_sparse.dir/operator.cpp.o"
  "CMakeFiles/roarray_sparse.dir/operator.cpp.o.d"
  "CMakeFiles/roarray_sparse.dir/power.cpp.o"
  "CMakeFiles/roarray_sparse.dir/power.cpp.o.d"
  "CMakeFiles/roarray_sparse.dir/reweighted.cpp.o"
  "CMakeFiles/roarray_sparse.dir/reweighted.cpp.o.d"
  "libroarray_sparse.a"
  "libroarray_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roarray_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
