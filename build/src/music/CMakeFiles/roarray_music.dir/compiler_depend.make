# Empty compiler generated dependencies file for roarray_music.
# This may be replaced when dependencies are built.
