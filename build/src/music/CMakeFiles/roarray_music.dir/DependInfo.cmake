
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/music/arraytrack.cpp" "src/music/CMakeFiles/roarray_music.dir/arraytrack.cpp.o" "gcc" "src/music/CMakeFiles/roarray_music.dir/arraytrack.cpp.o.d"
  "/root/repo/src/music/cluster.cpp" "src/music/CMakeFiles/roarray_music.dir/cluster.cpp.o" "gcc" "src/music/CMakeFiles/roarray_music.dir/cluster.cpp.o.d"
  "/root/repo/src/music/covariance.cpp" "src/music/CMakeFiles/roarray_music.dir/covariance.cpp.o" "gcc" "src/music/CMakeFiles/roarray_music.dir/covariance.cpp.o.d"
  "/root/repo/src/music/model_order.cpp" "src/music/CMakeFiles/roarray_music.dir/model_order.cpp.o" "gcc" "src/music/CMakeFiles/roarray_music.dir/model_order.cpp.o.d"
  "/root/repo/src/music/music.cpp" "src/music/CMakeFiles/roarray_music.dir/music.cpp.o" "gcc" "src/music/CMakeFiles/roarray_music.dir/music.cpp.o.d"
  "/root/repo/src/music/smoothing.cpp" "src/music/CMakeFiles/roarray_music.dir/smoothing.cpp.o" "gcc" "src/music/CMakeFiles/roarray_music.dir/smoothing.cpp.o.d"
  "/root/repo/src/music/spotfi.cpp" "src/music/CMakeFiles/roarray_music.dir/spotfi.cpp.o" "gcc" "src/music/CMakeFiles/roarray_music.dir/spotfi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/roarray_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/roarray_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
