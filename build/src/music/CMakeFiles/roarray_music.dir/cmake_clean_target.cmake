file(REMOVE_RECURSE
  "libroarray_music.a"
)
