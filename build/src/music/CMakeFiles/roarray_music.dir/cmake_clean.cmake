file(REMOVE_RECURSE
  "CMakeFiles/roarray_music.dir/arraytrack.cpp.o"
  "CMakeFiles/roarray_music.dir/arraytrack.cpp.o.d"
  "CMakeFiles/roarray_music.dir/cluster.cpp.o"
  "CMakeFiles/roarray_music.dir/cluster.cpp.o.d"
  "CMakeFiles/roarray_music.dir/covariance.cpp.o"
  "CMakeFiles/roarray_music.dir/covariance.cpp.o.d"
  "CMakeFiles/roarray_music.dir/model_order.cpp.o"
  "CMakeFiles/roarray_music.dir/model_order.cpp.o.d"
  "CMakeFiles/roarray_music.dir/music.cpp.o"
  "CMakeFiles/roarray_music.dir/music.cpp.o.d"
  "CMakeFiles/roarray_music.dir/smoothing.cpp.o"
  "CMakeFiles/roarray_music.dir/smoothing.cpp.o.d"
  "CMakeFiles/roarray_music.dir/spotfi.cpp.o"
  "CMakeFiles/roarray_music.dir/spotfi.cpp.o.d"
  "libroarray_music.a"
  "libroarray_music.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roarray_music.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
