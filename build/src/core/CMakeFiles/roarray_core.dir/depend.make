# Empty dependencies file for roarray_core.
# This may be replaced when dependencies are built.
