file(REMOVE_RECURSE
  "libroarray_core.a"
)
