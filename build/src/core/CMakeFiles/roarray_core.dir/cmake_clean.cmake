file(REMOVE_RECURSE
  "CMakeFiles/roarray_core.dir/calibration.cpp.o"
  "CMakeFiles/roarray_core.dir/calibration.cpp.o.d"
  "CMakeFiles/roarray_core.dir/roarray.cpp.o"
  "CMakeFiles/roarray_core.dir/roarray.cpp.o.d"
  "CMakeFiles/roarray_core.dir/tracker.cpp.o"
  "CMakeFiles/roarray_core.dir/tracker.cpp.o.d"
  "libroarray_core.a"
  "libroarray_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roarray_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
