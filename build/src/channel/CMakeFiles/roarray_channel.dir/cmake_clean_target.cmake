file(REMOVE_RECURSE
  "libroarray_channel.a"
)
