# Empty compiler generated dependencies file for roarray_channel.
# This may be replaced when dependencies are built.
