file(REMOVE_RECURSE
  "CMakeFiles/roarray_channel.dir/csi.cpp.o"
  "CMakeFiles/roarray_channel.dir/csi.cpp.o.d"
  "CMakeFiles/roarray_channel.dir/multipath.cpp.o"
  "CMakeFiles/roarray_channel.dir/multipath.cpp.o.d"
  "libroarray_channel.a"
  "libroarray_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roarray_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
