file(REMOVE_RECURSE
  "libroarray_linalg.a"
)
