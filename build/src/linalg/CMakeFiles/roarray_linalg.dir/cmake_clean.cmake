file(REMOVE_RECURSE
  "CMakeFiles/roarray_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/roarray_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/roarray_linalg.dir/eig.cpp.o"
  "CMakeFiles/roarray_linalg.dir/eig.cpp.o.d"
  "CMakeFiles/roarray_linalg.dir/qr.cpp.o"
  "CMakeFiles/roarray_linalg.dir/qr.cpp.o.d"
  "CMakeFiles/roarray_linalg.dir/svd.cpp.o"
  "CMakeFiles/roarray_linalg.dir/svd.cpp.o.d"
  "libroarray_linalg.a"
  "libroarray_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roarray_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
