# Empty compiler generated dependencies file for roarray_linalg.
# This may be replaced when dependencies are built.
