file(REMOVE_RECURSE
  "libroarray_loc.a"
)
