file(REMOVE_RECURSE
  "CMakeFiles/roarray_loc.dir/localize.cpp.o"
  "CMakeFiles/roarray_loc.dir/localize.cpp.o.d"
  "libroarray_loc.a"
  "libroarray_loc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roarray_loc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
