# Empty dependencies file for roarray_loc.
# This may be replaced when dependencies are built.
