# Empty compiler generated dependencies file for roarray_eval.
# This may be replaced when dependencies are built.
