file(REMOVE_RECURSE
  "CMakeFiles/roarray_eval.dir/cdf.cpp.o"
  "CMakeFiles/roarray_eval.dir/cdf.cpp.o.d"
  "CMakeFiles/roarray_eval.dir/report.cpp.o"
  "CMakeFiles/roarray_eval.dir/report.cpp.o.d"
  "CMakeFiles/roarray_eval.dir/stats.cpp.o"
  "CMakeFiles/roarray_eval.dir/stats.cpp.o.d"
  "libroarray_eval.a"
  "libroarray_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roarray_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
