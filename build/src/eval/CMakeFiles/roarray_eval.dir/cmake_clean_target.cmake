file(REMOVE_RECURSE
  "libroarray_eval.a"
)
