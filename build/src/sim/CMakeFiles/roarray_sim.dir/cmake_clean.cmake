file(REMOVE_RECURSE
  "CMakeFiles/roarray_sim.dir/scenario.cpp.o"
  "CMakeFiles/roarray_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/roarray_sim.dir/testbed.cpp.o"
  "CMakeFiles/roarray_sim.dir/testbed.cpp.o.d"
  "libroarray_sim.a"
  "libroarray_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roarray_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
