file(REMOVE_RECURSE
  "libroarray_sim.a"
)
