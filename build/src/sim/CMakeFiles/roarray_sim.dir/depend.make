# Empty dependencies file for roarray_sim.
# This may be replaced when dependencies are built.
