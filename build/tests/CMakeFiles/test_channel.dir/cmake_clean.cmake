file(REMOVE_RECURSE
  "CMakeFiles/test_channel.dir/channel/test_csi.cpp.o"
  "CMakeFiles/test_channel.dir/channel/test_csi.cpp.o.d"
  "CMakeFiles/test_channel.dir/channel/test_geometry.cpp.o"
  "CMakeFiles/test_channel.dir/channel/test_geometry.cpp.o.d"
  "CMakeFiles/test_channel.dir/channel/test_impairments.cpp.o"
  "CMakeFiles/test_channel.dir/channel/test_impairments.cpp.o.d"
  "CMakeFiles/test_channel.dir/channel/test_multipath.cpp.o"
  "CMakeFiles/test_channel.dir/channel/test_multipath.cpp.o.d"
  "test_channel"
  "test_channel.pdb"
  "test_channel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
