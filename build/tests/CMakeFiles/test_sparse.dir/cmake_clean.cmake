file(REMOVE_RECURSE
  "CMakeFiles/test_sparse.dir/sparse/test_l1svd.cpp.o"
  "CMakeFiles/test_sparse.dir/sparse/test_l1svd.cpp.o.d"
  "CMakeFiles/test_sparse.dir/sparse/test_omp.cpp.o"
  "CMakeFiles/test_sparse.dir/sparse/test_omp.cpp.o.d"
  "CMakeFiles/test_sparse.dir/sparse/test_operator.cpp.o"
  "CMakeFiles/test_sparse.dir/sparse/test_operator.cpp.o.d"
  "CMakeFiles/test_sparse.dir/sparse/test_prox.cpp.o"
  "CMakeFiles/test_sparse.dir/sparse/test_prox.cpp.o.d"
  "CMakeFiles/test_sparse.dir/sparse/test_reweighted.cpp.o"
  "CMakeFiles/test_sparse.dir/sparse/test_reweighted.cpp.o.d"
  "CMakeFiles/test_sparse.dir/sparse/test_solver_properties.cpp.o"
  "CMakeFiles/test_sparse.dir/sparse/test_solver_properties.cpp.o.d"
  "CMakeFiles/test_sparse.dir/sparse/test_solvers.cpp.o"
  "CMakeFiles/test_sparse.dir/sparse/test_solvers.cpp.o.d"
  "test_sparse"
  "test_sparse.pdb"
  "test_sparse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
