file(REMOVE_RECURSE
  "CMakeFiles/test_system.dir/system/test_end_to_end.cpp.o"
  "CMakeFiles/test_system.dir/system/test_end_to_end.cpp.o.d"
  "CMakeFiles/test_system.dir/system/test_eval.cpp.o"
  "CMakeFiles/test_system.dir/system/test_eval.cpp.o.d"
  "CMakeFiles/test_system.dir/system/test_failure_injection.cpp.o"
  "CMakeFiles/test_system.dir/system/test_failure_injection.cpp.o.d"
  "CMakeFiles/test_system.dir/system/test_localize.cpp.o"
  "CMakeFiles/test_system.dir/system/test_localize.cpp.o.d"
  "CMakeFiles/test_system.dir/system/test_sim.cpp.o"
  "CMakeFiles/test_system.dir/system/test_sim.cpp.o.d"
  "CMakeFiles/test_system.dir/system/test_stats.cpp.o"
  "CMakeFiles/test_system.dir/system/test_stats.cpp.o.d"
  "test_system"
  "test_system.pdb"
  "test_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
