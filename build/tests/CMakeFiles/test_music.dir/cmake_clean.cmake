file(REMOVE_RECURSE
  "CMakeFiles/test_music.dir/music/test_baselines.cpp.o"
  "CMakeFiles/test_music.dir/music/test_baselines.cpp.o.d"
  "CMakeFiles/test_music.dir/music/test_cluster.cpp.o"
  "CMakeFiles/test_music.dir/music/test_cluster.cpp.o.d"
  "CMakeFiles/test_music.dir/music/test_covariance.cpp.o"
  "CMakeFiles/test_music.dir/music/test_covariance.cpp.o.d"
  "CMakeFiles/test_music.dir/music/test_model_order.cpp.o"
  "CMakeFiles/test_music.dir/music/test_model_order.cpp.o.d"
  "CMakeFiles/test_music.dir/music/test_music.cpp.o"
  "CMakeFiles/test_music.dir/music/test_music.cpp.o.d"
  "CMakeFiles/test_music.dir/music/test_smoothing.cpp.o"
  "CMakeFiles/test_music.dir/music/test_smoothing.cpp.o.d"
  "test_music"
  "test_music.pdb"
  "test_music[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_music.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
