file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_calibration.cpp.o"
  "CMakeFiles/test_core.dir/core/test_calibration.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_fusion.cpp.o"
  "CMakeFiles/test_core.dir/core/test_fusion.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_generality.cpp.o"
  "CMakeFiles/test_core.dir/core/test_generality.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_roarray.cpp.o"
  "CMakeFiles/test_core.dir/core/test_roarray.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_tracker.cpp.o"
  "CMakeFiles/test_core.dir/core/test_tracker.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
