// Figure 8c: ROArray localization-error CDFs as the mobile client's
// antenna polarization deviates from the APs' plane: 0 deg, (0, 20] deg,
// (20, 45] deg. Paper medians degrade to 2.21 m and 4.71 m for the two
// deviation ranges — the 1-D array manifold cannot absorb the mismatch.
#include <iostream>
#include <random>

#include "eval/cdf.hpp"
#include "eval/report.hpp"
#include "loc/localize.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace roarray;
  const auto opts = bench::parse_options(argc, argv);

  const sim::Testbed tb = sim::make_paper_testbed();
  std::mt19937_64 rng(opts.seed);
  const auto clients =
      sim::sample_client_locations(opts.locations, tb.room, rng);
  bench::BenchRuntime rt(opts);
  const runtime::EstimateContext ctx = rt.context();

  loc::LocalizeConfig lcfg;
  lcfg.room = tb.room;
  lcfg.grid_step_m = 0.1;

  std::printf("Figure 8c reproduction: ROArray accuracy vs polarization "
              "deviation (%lld locations, %d threads)\n\n",
              static_cast<long long>(opts.locations), rt.pool.threads());

  struct Band {
    const char* name;
    double lo_deg;
    double hi_deg;
  };
  const Band bands[] = {{"0 deg", 0.0, 0.0},
                        {"0-20 deg", 1.0, 20.0},
                        {"20-45 deg", 20.0, 45.0}};

  std::vector<eval::NamedCdf> curves;
  std::uint64_t band_index = 0;
  for (const Band& band : bands) {
    // Per-(band, location) RNG streams: the deviation draw and the
    // measurement noise both come from the location's own stream, so
    // locations can run concurrently without reordering the draws.
    const std::uint64_t band_seed =
        opts.seed ^ (static_cast<std::uint64_t>(++band_index) << 32);
    const auto per_loc = rt.pool.map<std::vector<double>>(
        static_cast<linalg::index_t>(clients.size()), [&](linalg::index_t li) {
          const sim::Vec2& client = clients[static_cast<std::size_t>(li)];
          std::mt19937_64 loc_rng(
              bench::trial_seed(band_seed, static_cast<std::uint64_t>(li)));
          std::uniform_real_distribution<double> dev_deg(band.lo_deg,
                                                         band.hi_deg);
          sim::ScenarioConfig scfg;
          scfg.num_packets = opts.packets;
          scfg.snr_band = sim::SnrBand::kHigh;
          scfg.polarization_deviation_rad =
              dsp::deg_to_rad(band.hi_deg > 0.0 ? dev_deg(loc_rng) : 0.0);
          const auto ms = sim::generate_measurements(tb, client, scfg, loc_rng);
          std::vector<loc::ApObservation> obs;
          for (const sim::ApMeasurement& m : ms) {
            double aoa = 0.0;
            if (!bench::estimate_direct_aoa(bench::System::kRoArray, m,
                                            scfg.array, aoa, false, ctx)) {
              continue;
            }
            obs.push_back({m.pose, aoa, m.rssi_weight});
          }
          std::vector<double> errs;
          const loc::LocalizeResult fix = loc::localize(obs, lcfg, ctx.pool);
          if (fix.valid) {
            errs.push_back(channel::distance(fix.position, client));
          }
          return errs;
        });
    std::vector<double> errors;
    for (const auto& le : per_loc) {
      errors.insert(errors.end(), le.begin(), le.end());
    }
    curves.push_back({band.name, eval::Cdf(errors)});
  }

  eval::print_cdf_table(std::cout, "Fig 8c, polarization deviation", curves,
                        bench::cdf_fractions(), "m");
  eval::print_cdf_summary(std::cout, curves, "m");
  std::printf("\npaper reference medians: ~1 m at 0 deg, 2.21 m at 0-20 deg, "
              "4.71 m at 20-45 deg.\n");
  return 0;
}
