// Figure 8a: ROArray localization-error CDFs with 3, 4, and 5 APs.
// Paper medians: 2.79 m (3 APs), 1.56 m (4 APs), 1.04 m (5 APs) —
// accuracy improves with AP density because the RSSI-weighted scheme
// gets more high-quality direct paths to vote with.
#include <iostream>
#include <random>

#include "core/roarray.hpp"
#include "eval/cdf.hpp"
#include "eval/report.hpp"
#include "loc/localize.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace roarray;
  const auto opts = bench::parse_options(argc, argv);

  const sim::Testbed tb = sim::make_paper_testbed();
  std::mt19937_64 rng(opts.seed);
  const auto clients =
      sim::sample_client_locations(opts.locations, tb.room, rng);
  bench::BenchRuntime rt(opts);
  const runtime::EstimateContext ctx = rt.context();

  sim::ScenarioConfig scfg;
  scfg.num_packets = opts.packets;
  scfg.snr_band = sim::SnrBand::kMedium;

  loc::LocalizeConfig lcfg;
  lcfg.room = tb.room;
  lcfg.grid_step_m = 0.1;

  std::printf("Figure 8a reproduction: ROArray accuracy vs number of APs "
              "(%lld locations, medium SNR, %d threads)\n\n",
              static_cast<long long>(opts.locations), rt.pool.threads());

  const std::vector<linalg::index_t> ap_counts = {3, 4, 5};

  // errors for one location, one slot per AP count; merged in location
  // order below so the CDFs are thread-count independent.
  using LocationErrors = std::vector<std::vector<double>>;
  const auto per_loc = rt.pool.map<LocationErrors>(
      static_cast<linalg::index_t>(clients.size()), [&](linalg::index_t li) {
        const sim::Vec2& client = clients[static_cast<std::size_t>(li)];
        std::mt19937_64 loc_rng(
            bench::trial_seed(opts.seed, static_cast<std::uint64_t>(li)));
        const auto ms = sim::generate_measurements(tb, client, scfg, loc_rng);
        // Estimate all 6 AP AoAs once, reuse across subset sizes.
        std::vector<loc::ApObservation> all_obs;
        for (const sim::ApMeasurement& m : ms) {
          double aoa = 0.0;
          if (!bench::estimate_direct_aoa(bench::System::kRoArray, m,
                                          scfg.array, aoa, false, ctx)) {
            continue;
          }
          all_obs.push_back({m.pose, aoa, m.rssi_weight});
        }
        LocationErrors errs(ap_counts.size());
        for (std::size_t c = 0; c < ap_counts.size(); ++c) {
          const auto n = static_cast<std::size_t>(ap_counts[c]);
          if (all_obs.size() < n) continue;
          const std::vector<loc::ApObservation> subset(all_obs.begin(),
                                                       all_obs.begin() + n);
          const loc::LocalizeResult fix = loc::localize(subset, lcfg, ctx.pool);
          if (fix.valid) {
            errs[c].push_back(channel::distance(fix.position, client));
          }
        }
        return errs;
      });

  std::vector<std::vector<double>> errors(ap_counts.size());
  for (const LocationErrors& le : per_loc) {
    for (std::size_t c = 0; c < ap_counts.size(); ++c) {
      errors[c].insert(errors[c].end(), le[c].begin(), le[c].end());
    }
  }

  std::vector<eval::NamedCdf> curves;
  for (std::size_t c = 0; c < ap_counts.size(); ++c) {
    curves.push_back({std::to_string(ap_counts[c]) + " APs",
                      eval::Cdf(errors[c])});
  }
  eval::print_cdf_table(std::cout, "Fig 8a, ROArray vs AP count", curves,
                        bench::cdf_fractions(), "m");
  eval::print_cdf_summary(std::cout, curves, "m");
  std::printf("\npaper reference medians: 2.79 m (3 APs), 1.56 m (4 APs), "
              "1.04 m (5 APs)\n");
  return 0;
}
