// Figure 8b: localization-error CDFs under three phase-calibration
// schemes: offsets estimated with ROArray's sparse AoA spectrum, with a
// MUSIC spectrum (Phaser-style), and no calibration at all.
// Paper shape: no calibration is worst (~2.0 m median); ROArray-driven
// calibration beats MUSIC-driven by ~0.7 m median.
#include <iostream>
#include <random>

#include "core/calibration.hpp"
#include "core/roarray.hpp"
#include "eval/cdf.hpp"
#include "eval/report.hpp"
#include "loc/localize.hpp"
#include "common.hpp"

namespace {

using namespace roarray;

enum class Scheme { kRoArrayCal, kMusicCal, kNone };

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kRoArrayCal: return "ROArray cal";
    case Scheme::kMusicCal: return "MUSIC cal";
    case Scheme::kNone: return "no cal";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);

  const sim::Testbed tb = sim::make_paper_testbed();
  std::mt19937_64 rng(opts.seed);
  bench::BenchRuntime rt(opts);
  const runtime::EstimateContext ctx = rt.context();

  // Static per-antenna phase offsets, fixed for the whole experiment
  // (these appear whenever the AP changes channel).
  std::uniform_real_distribution<double> u(0.0, 2.0 * dsp::kPi);
  const std::vector<double> true_offsets = {0.0, u(rng), u(rng)};
  std::printf("Figure 8b reproduction: calibration schemes "
              "(true offsets: %.2f, %.2f, %.2f rad)\n\n",
              true_offsets[0], true_offsets[1], true_offsets[2]);

  sim::ScenarioConfig scfg;
  scfg.num_packets = opts.packets;
  scfg.snr_band = sim::SnrBand::kHigh;
  scfg.antenna_phase_offsets_rad = true_offsets;

  // Calibration session: a transmitter parked at a surveyed spot with
  // clear line of sight to every AP (that is the point of surveying it).
  const sim::Vec2 session_client{9.0, 6.0};
  sim::ScenarioConfig session_cfg = scfg;
  session_cfg.los_block_probability = 0.0;
  const auto session =
      sim::generate_measurements(tb, session_client, session_cfg, rng);

  // Per-AP offset estimates for both spectrum-driven schemes.
  std::vector<std::vector<double>> ro_offsets, mu_offsets;
  for (const sim::ApMeasurement& m : session) {
    const double known = m.pose.aoa_of_point(session_client);
    core::CalibrationConfig ccfg;
    ccfg.method = core::CalibrationMethod::kRoArray;
    ro_offsets.push_back(
        core::estimate_phase_offsets(m.burst.csi, known, scfg.array, ccfg)
            .offsets_rad);
    ccfg.method = core::CalibrationMethod::kMusic;
    mu_offsets.push_back(
        core::estimate_phase_offsets(m.burst.csi, known, scfg.array, ccfg)
            .offsets_rad);
  }
  std::printf("calibration sessions done (6 APs x 2 schemes)\n");

  // Localization sweep under each scheme.
  const auto clients = sim::sample_client_locations(opts.locations, tb.room, rng);
  scfg.snr_band = sim::SnrBand::kMedium;

  loc::LocalizeConfig lcfg;
  lcfg.room = tb.room;
  lcfg.grid_step_m = 0.1;

  const Scheme schemes[] = {Scheme::kRoArrayCal, Scheme::kMusicCal,
                            Scheme::kNone};

  // One slot per location (3 schemes each), merged in location order so
  // the CDFs are identical at any thread count.
  using LocationErrors = std::vector<std::vector<double>>;
  const auto per_loc = rt.pool.map<LocationErrors>(
      static_cast<linalg::index_t>(clients.size()), [&](linalg::index_t li) {
        const sim::Vec2& client = clients[static_cast<std::size_t>(li)];
        std::mt19937_64 loc_rng(
            bench::trial_seed(opts.seed, static_cast<std::uint64_t>(li)));
        const auto ms = sim::generate_measurements(tb, client, scfg, loc_rng);
        LocationErrors errs(3);
        for (std::size_t s = 0; s < 3; ++s) {
          std::vector<loc::ApObservation> obs;
          for (std::size_t a = 0; a < ms.size(); ++a) {
            std::vector<linalg::CMat> packets = ms[a].burst.csi;
            if (schemes[s] == Scheme::kRoArrayCal) {
              for (auto& c : packets) {
                c = core::apply_phase_correction(c, ro_offsets[a]);
              }
            } else if (schemes[s] == Scheme::kMusicCal) {
              for (auto& c : packets) {
                c = core::apply_phase_correction(c, mu_offsets[a]);
              }
            }
            core::RoArrayConfig rcfg;
            rcfg.solver.max_iterations = 300;
            const core::RoArrayResult r =
                core::roarray_estimate(packets, rcfg, scfg.array, ctx);
            if (!r.valid) continue;
            obs.push_back({ms[a].pose, r.direct.aoa_deg, ms[a].rssi_weight});
          }
          const loc::LocalizeResult fix = loc::localize(obs, lcfg, ctx.pool);
          if (fix.valid) {
            errs[s].push_back(channel::distance(fix.position, client));
          }
        }
        return errs;
      });

  std::vector<std::vector<double>> errors(3);
  for (const LocationErrors& le : per_loc) {
    for (std::size_t s = 0; s < 3; ++s) {
      errors[s].insert(errors[s].end(), le[s].begin(), le[s].end());
    }
  }

  std::vector<eval::NamedCdf> curves;
  for (std::size_t s = 0; s < 3; ++s) {
    curves.push_back({scheme_name(schemes[s]), eval::Cdf(errors[s])});
  }
  eval::print_cdf_table(std::cout, "Fig 8b, calibration schemes", curves,
                        bench::cdf_fractions(), "m");
  eval::print_cdf_summary(std::cout, curves, "m");
  std::printf("\npaper shape: no-cal worst (~2.0 m median); ROArray-driven "
              "cal ~0.7 m better than MUSIC-driven.\n");
  return 0;
}
