// Micro-benchmarks (google-benchmark): solver and substrate costs,
// including the design-choice ablations called out in DESIGN.md —
// Kronecker vs dense steering operator, FISTA vs ISTA vs ADMM, and the
// Section III-C complexity scaling of the joint solve.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <limits>
#include <random>
#include <string>

#include "channel/csi.hpp"
#include "common.hpp"
#include "core/roarray.hpp"
#include "eval/report.hpp"
#include "dsp/fft.hpp"
#include "dsp/sanitize.hpp"
#include "dsp/steering.hpp"
#include "linalg/backend/backend.hpp"
#include "linalg/eig.hpp"
#include "linalg/gemm.hpp"
#include "linalg/svd.hpp"
#include "music/covariance.hpp"
#include "music/music.hpp"
#include "music/smoothing.hpp"
#include "sparse/admm.hpp"
#include "sparse/fista.hpp"
#include "sparse/l1svd.hpp"
#include "sparse/omp.hpp"
#include "sparse/prox.hpp"
#include "sparse/reweighted.hpp"
#include "sparse/operator.hpp"

namespace {

using namespace roarray;
using linalg::CMat;
using linalg::CVec;
using linalg::cxd;
using linalg::index_t;

const dsp::ArrayConfig kArray;

CVec measurement_for(const dsp::ArrayConfig& arr, std::uint64_t seed) {
  channel::Path d;
  d.aoa_deg = 110.0;
  d.toa_s = 60e-9;
  d.gain = cxd{1.0, 0.0};
  channel::Path r;
  r.aoa_deg = 50.0;
  r.toa_s = 240e-9;
  r.gain = cxd{0.5, 0.2};
  std::mt19937_64 rng(seed);
  CMat csi = channel::synthesize_csi({d, r}, arr);
  channel::add_noise(csi, 15.0, rng);
  return core::stack_csi(csi);
}

void BM_SteeringMatrixJointBuild(benchmark::State& state) {
  const dsp::Grid aoa(0.0, 180.0, 91);
  const dsp::Grid toa(0.0, 784e-9, 50);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::steering_matrix_joint(aoa, toa, kArray));
  }
}
BENCHMARK(BM_SteeringMatrixJointBuild)->Unit(benchmark::kMillisecond);

/// Ablation: dense matvec on the materialized Eq. 16 matrix ...
void BM_DenseOperatorApply(benchmark::State& state) {
  const dsp::Grid aoa(0.0, 180.0, 91);
  const dsp::Grid toa(0.0, 784e-9, 50);
  const sparse::DenseOperator op(dsp::steering_matrix_joint(aoa, toa, kArray));
  const CVec x(op.cols(), cxd{0.01, 0.01});
  for (auto _ : state) {
    benchmark::DoNotOptimize(op.apply(x));
  }
}
BENCHMARK(BM_DenseOperatorApply)->Unit(benchmark::kMicrosecond);

/// ... vs the Kronecker-structured operator (the design DESIGN.md keeps).
void BM_KroneckerOperatorApply(benchmark::State& state) {
  const dsp::Grid aoa(0.0, 180.0, 91);
  const dsp::Grid toa(0.0, 784e-9, 50);
  const sparse::KroneckerOperator op(dsp::steering_matrix_aoa(aoa, kArray),
                                     dsp::steering_matrix_toa(toa, kArray));
  const CVec x(op.cols(), cxd{0.01, 0.01});
  for (auto _ : state) {
    benchmark::DoNotOptimize(op.apply(x));
  }
}
BENCHMARK(BM_KroneckerOperatorApply)->Unit(benchmark::kMicrosecond);

/// Tentpole kernel ablation: cache-blocked GEMM vs the naive triple loop
/// on the materialized joint steering matrix times a snapshot block.
void BM_GemmJointSteering(benchmark::State& state) {
  const bool blocked = state.range(0) == 1;
  const dsp::Grid aoa(0.0, 180.0, 91);
  const dsp::Grid toa(0.0, 784e-9, 50);
  const CMat s = dsp::steering_matrix_joint(aoa, toa, kArray);
  CMat x(s.cols(), 8);
  for (index_t j = 0; j < x.cols(); ++j) {
    for (index_t i = 0; i < x.rows(); ++i) {
      x(i, j) = cxd{0.01 * static_cast<double>((i + 2 * j) % 7),
                    0.005 * static_cast<double>(i % 5)};
    }
  }
  for (auto _ : state) {
    if (blocked) {
      benchmark::DoNotOptimize(linalg::matmul_blocked(s, x));
    } else {
      benchmark::DoNotOptimize(matmul(s, x));
    }
  }
  state.SetLabel(blocked ? "blocked" : "naive");
}
BENCHMARK(BM_GemmJointSteering)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

/// Tentpole kernel ablation: batched (reshape-trick) Kronecker block
/// apply vs the per-column base-class path on the same operator.
void BM_KroneckerApplyMat(benchmark::State& state) {
  const bool batched = state.range(0) == 1;
  const dsp::Grid aoa(0.0, 180.0, 91);
  const dsp::Grid toa(0.0, 784e-9, 50);
  const sparse::KroneckerOperator op(dsp::steering_matrix_aoa(aoa, kArray),
                                     dsp::steering_matrix_toa(toa, kArray));
  CMat x(op.cols(), 4);
  for (index_t j = 0; j < x.cols(); ++j) {
    for (index_t i = 0; i < x.rows(); ++i) {
      x(i, j) = cxd{0.01 * static_cast<double>((i + j) % 11),
                    0.002 * static_cast<double>(i % 3)};
    }
  }
  CMat y;
  for (auto _ : state) {
    if (batched) {
      op.apply_mat_into(x, y, nullptr);
    } else {
      op.LinearOperator::apply_mat_into(x, y, nullptr);
    }
    benchmark::DoNotOptimize(y.data());
  }
  state.SetLabel(batched ? "batched (3 GEMMs)" : "per-column");
}
BENCHMARK(BM_KroneckerApplyMat)->Arg(1)->Arg(0)->Unit(benchmark::kMicrosecond);

/// Tentpole solver ablation: group FISTA with the momentum-linearity
/// apply reuse (2 operator applications per iteration) vs the direct
/// 3-application path, at a fixed iteration count.
void BM_GroupSolveApplyReuse(benchmark::State& state) {
  const bool reuse = state.range(0) == 1;
  const dsp::Grid aoa(0.0, 180.0, 91);
  const dsp::Grid toa(0.0, 784e-9, 50);
  const sparse::KroneckerOperator op(dsp::steering_matrix_aoa(aoa, kArray),
                                     dsp::steering_matrix_toa(toa, kArray));
  CMat y(op.rows(), 3);
  for (index_t c = 0; c < y.cols(); ++c) {
    y.set_col(c, measurement_for(kArray, 20 + static_cast<std::uint64_t>(c)));
  }
  sparse::SolveConfig cfg;
  cfg.max_iterations = 200;
  cfg.tolerance = 0.0;  // fixed work so both paths run equal iterations
  cfg.reuse_applies = reuse;
  for (auto _ : state) {
    const auto r = sparse::solve_group_l1(op, y, cfg);
    benchmark::DoNotOptimize(r.iterations);
  }
  state.SetLabel(reuse ? "apply-reuse (2 applies/it)" : "direct (3 applies/it)");
}
BENCHMARK(BM_GroupSolveApplyReuse)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

/// Section III-C: joint-solve cost vs grid size (N_theta * N_tau).
void BM_JointSolveScaling(benchmark::State& state) {
  const auto ntheta = static_cast<index_t>(state.range(0));
  const auto ntau = static_cast<index_t>(state.range(1));
  const dsp::Grid aoa(0.0, 180.0, ntheta);
  const dsp::Grid toa(0.0, 784e-9, ntau);
  const sparse::KroneckerOperator op(dsp::steering_matrix_aoa(aoa, kArray),
                                     dsp::steering_matrix_toa(toa, kArray));
  const CVec y = measurement_for(kArray, 1);
  sparse::SolveConfig cfg;
  cfg.max_iterations = 100;
  cfg.tolerance = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::solve_l1(op, y, cfg));
  }
  state.SetLabel("grid=" + std::to_string(ntheta) + "x" + std::to_string(ntau));
}
BENCHMARK(BM_JointSolveScaling)
    ->Args({46, 25})
    ->Args({91, 50})
    ->Args({181, 50})
    ->Unit(benchmark::kMillisecond);

/// Ablation: the three solvers on the identical objective.
void BM_SolverFista(benchmark::State& state) {
  const dsp::Grid aoa(0.0, 180.0, 91);
  const dsp::Grid toa(0.0, 784e-9, 50);
  const sparse::KroneckerOperator op(dsp::steering_matrix_aoa(aoa, kArray),
                                     dsp::steering_matrix_toa(toa, kArray));
  const CVec y = measurement_for(kArray, 2);
  sparse::SolveConfig cfg;
  cfg.max_iterations = 400;
  for (auto _ : state) {
    const auto r = sparse::solve_l1(op, y, cfg);
    benchmark::DoNotOptimize(r.iterations);
  }
}
BENCHMARK(BM_SolverFista)->Unit(benchmark::kMillisecond);

void BM_SolverIsta(benchmark::State& state) {
  const dsp::Grid aoa(0.0, 180.0, 91);
  const dsp::Grid toa(0.0, 784e-9, 50);
  const sparse::KroneckerOperator op(dsp::steering_matrix_aoa(aoa, kArray),
                                     dsp::steering_matrix_toa(toa, kArray));
  const CVec y = measurement_for(kArray, 2);
  sparse::SolveConfig cfg;
  cfg.algorithm = sparse::Algorithm::kIsta;
  cfg.max_iterations = 400;
  for (auto _ : state) {
    const auto r = sparse::solve_l1(op, y, cfg);
    benchmark::DoNotOptimize(r.iterations);
  }
}
BENCHMARK(BM_SolverIsta)->Unit(benchmark::kMillisecond);

void BM_SolverAdmm(benchmark::State& state) {
  const dsp::Grid aoa(0.0, 180.0, 91);
  const dsp::Grid toa(0.0, 784e-9, 50);
  const sparse::KroneckerOperator op(dsp::steering_matrix_aoa(aoa, kArray),
                                     dsp::steering_matrix_toa(toa, kArray));
  const CVec y = measurement_for(kArray, 2);
  sparse::AdmmConfig cfg;
  cfg.max_iterations = 200;
  for (auto _ : state) {
    const auto r = sparse::solve_l1_admm(op, y, cfg);
    benchmark::DoNotOptimize(r.iterations);
  }
}
BENCHMARK(BM_SolverAdmm)->Unit(benchmark::kMillisecond);

void BM_MusicJointSpectrum(benchmark::State& state) {
  channel::Path d;
  d.aoa_deg = 110.0;
  d.toa_s = 60e-9;
  d.gain = cxd{1.0, 0.0};
  std::mt19937_64 rng(3);
  CMat csi = channel::synthesize_csi({d}, kArray);
  channel::add_noise(csi, 15.0, rng);
  const music::SmoothingConfig sc;
  CMat r = music::sample_covariance(music::smooth_csi(csi, sc));
  r = music::forward_backward_average(r);
  const dsp::Grid aoa(0.0, 180.0, 91);
  const dsp::Grid toa(0.0, 784e-9, 50);
  for (auto _ : state) {
    benchmark::DoNotOptimize(music::music_spectrum_joint(
        r, 3, aoa, toa, kArray, sc.sub_antennas, sc.sub_carriers));
  }
}
BENCHMARK(BM_MusicJointSpectrum)->Unit(benchmark::kMillisecond);

void BM_EigHermitian(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  std::mt19937_64 rng(4);
  std::normal_distribution<double> g(0.0, 1.0);
  CMat b(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) b(i, j) = cxd{g(rng), g(rng)};
  const CMat a = matmul(b, adjoint(b));
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::eig_hermitian(a));
  }
}
BENCHMARK(BM_EigHermitian)->Arg(3)->Arg(30)->Arg(90)->Unit(benchmark::kMicrosecond);

void BM_SvdSnapshots(benchmark::State& state) {
  std::mt19937_64 rng(5);
  std::normal_distribution<double> g(0.0, 1.0);
  CMat y(90, 30);
  for (index_t j = 0; j < 30; ++j)
    for (index_t i = 0; i < 90; ++i) y(i, j) = cxd{g(rng), g(rng)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::reduce_snapshots(y, 5));
  }
}
BENCHMARK(BM_SvdSnapshots)->Unit(benchmark::kMillisecond);

void BM_SanitizeCsi(benchmark::State& state) {
  channel::Path d;
  d.aoa_deg = 95.0;
  d.toa_s = 80e-9;
  d.gain = cxd{1.0, 0.0};
  channel::CsiImpairments imp;
  imp.detection_delay_s = 120e-9;
  const CMat csi = channel::synthesize_csi({d}, kArray, imp);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::sanitize_csi(csi, kArray));
  }
}
BENCHMARK(BM_SanitizeCsi)->Unit(benchmark::kMicrosecond);

/// Ablation: fuse-then-solve vs solve-every-packet at equal data volume.
void BM_FusionVsPerPacket(benchmark::State& state) {
  const bool fuse = state.range(0) == 1;
  channel::Path d;
  d.aoa_deg = 100.0;
  d.toa_s = 60e-9;
  d.gain = cxd{1.0, 0.0};
  std::mt19937_64 rng(6);
  channel::BurstConfig bc;
  bc.num_packets = 15;
  bc.snr_db = 10.0;
  const auto burst = channel::generate_burst({d}, kArray, bc, rng);
  core::RoArrayConfig cfg;
  cfg.solver.max_iterations = 150;
  for (auto _ : state) {
    if (fuse) {
      benchmark::DoNotOptimize(core::roarray_estimate(burst.csi, cfg, kArray));
    } else {
      for (const auto& pkt : burst.csi) {
        const std::vector<CMat> one = {pkt};
        benchmark::DoNotOptimize(core::roarray_estimate(one, cfg, kArray));
      }
    }
  }
  state.SetLabel(fuse ? "l1-SVD fusion (one solve)" : "per-packet (15 solves)");
}
BENCHMARK(BM_FusionVsPerPacket)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

void BM_SolverOmp(benchmark::State& state) {
  const dsp::Grid aoa(0.0, 180.0, 91);
  const dsp::Grid toa(0.0, 784e-9, 50);
  const sparse::KroneckerOperator op(dsp::steering_matrix_aoa(aoa, kArray),
                                     dsp::steering_matrix_toa(toa, kArray));
  const CVec y = measurement_for(kArray, 2);
  sparse::OmpConfig cfg;
  cfg.max_atoms = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::solve_omp(op, y, cfg));
  }
}
BENCHMARK(BM_SolverOmp)->Unit(benchmark::kMillisecond);

void BM_SolverReweighted(benchmark::State& state) {
  const dsp::Grid aoa(0.0, 180.0, 91);
  const dsp::Grid toa(0.0, 784e-9, 50);
  const sparse::KroneckerOperator op(dsp::steering_matrix_aoa(aoa, kArray),
                                     dsp::steering_matrix_toa(toa, kArray));
  const CVec y = measurement_for(kArray, 2);
  sparse::ReweightedConfig cfg;
  cfg.rounds = 3;
  cfg.inner.max_iterations = 150;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::solve_reweighted_l1(op, y, cfg));
  }
}
BENCHMARK(BM_SolverReweighted)->Unit(benchmark::kMillisecond);

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  CVec x(n);
  for (index_t i = 0; i < n; ++i) {
    x[i] = cxd{std::sin(0.1 * static_cast<double>(i)), 0.2};
  }
  for (auto _ : state) {
    CVec copy = x;
    dsp::fft_inplace(copy);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_Fft)->Arg(128)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_PowerDelayProfile(benchmark::State& state) {
  channel::Path d;
  d.aoa_deg = 95.0;
  d.toa_s = 120e-9;
  d.gain = cxd{1.0, 0.0};
  const CMat csi = channel::synthesize_csi({d}, kArray);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::power_delay_profile(csi, kArray));
  }
}
BENCHMARK(BM_PowerDelayProfile)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// BENCH_micro.json: the operator-cache / parallel-runtime report.
// Measures (1) estimation setup cost, fresh vs cache hit, (2) one joint
// solve with the Lipschitz constant recomputed per call vs taken from
// the cache, and (3) a small fig6-style Monte Carlo end to end under the
// three execution modes (serial per-call setup, serial with cached
// operator, N-thread pool with cached operator), checking that all three
// produce bit-identical error samples.

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

bool same_samples(const std::vector<bench::SystemErrors>& a,
                  const std::vector<bench::SystemErrors>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t s = 0; s < a.size(); ++s) {
    if (a[s].localization_m != b[s].localization_m) return false;
    if (a[s].aoa_deg != b[s].aoa_deg) return false;
  }
  return true;
}

/// Returns false when the report could not be written (the CI smoke leg
/// depends on the file existing, so a write failure must fail the run).
/// `coarse_fine` adds the coarse_to_fine section (--coarse-fine flag).
[[nodiscard]] bool write_micro_report(const char* path, bool coarse_fine) {
  using clock = std::chrono::steady_clock;
  const dsp::Grid aoa = dsp::default_aoa_grid();
  const dsp::Grid toa = dsp::default_toa_grid();

  // (1) Setup: fresh build (steering factors + power iteration + grams)
  // vs a warm cache hit.
  auto t = clock::now();
  const auto fresh = runtime::build_cached_operator(aoa, toa, kArray);
  const double setup_uncached_ms = elapsed_ms(t);

  runtime::OperatorCache cache;
  (void)cache.get(aoa, toa, kArray);
  t = clock::now();
  const auto hit = cache.get(aoa, toa, kArray);
  const double setup_cached_ms = elapsed_ms(t);

  // (2) One joint solve, Lipschitz recomputed per call vs cached hint.
  const CVec y = measurement_for(kArray, 11);
  sparse::SolveConfig scfg;
  scfg.max_iterations = 200;
  double solve_percall_ms = 1e300, solve_cached_ms = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    sparse::SolveConfig per_call = scfg;
    t = clock::now();
    const auto r1 = sparse::solve_l1(hit->op, y, per_call);
    solve_percall_ms = std::min(solve_percall_ms, elapsed_ms(t));
    benchmark::DoNotOptimize(r1.iterations);

    sparse::SolveConfig hinted = scfg;
    hinted.lipschitz_hint = hit->norm_sq;
    t = clock::now();
    const auto r2 = sparse::solve_l1(hit->op, y, hinted);
    solve_cached_ms = std::min(solve_cached_ms, elapsed_ms(t));
    benchmark::DoNotOptimize(r2.iterations);
  }

  // (2b) Kernel-level ablations behind the solve numbers above. Each
  // timing is a best-of-3 minimum; each fast path is checked against its
  // reference on the spot so the report can double as a smoke test
  // (scripts/ci.sh fails if any flag below comes out false).

  // Blocked GEMM vs the naive triple loop on the materialized joint
  // steering matrix times an 8-column snapshot block.
  const CMat sj = dsp::steering_matrix_joint(aoa, toa, kArray);
  CMat xblk(sj.cols(), 8);
  for (index_t j = 0; j < xblk.cols(); ++j) {
    for (index_t i = 0; i < xblk.rows(); ++i) {
      xblk(i, j) = cxd{0.01 * static_cast<double>((i + 2 * j) % 7),
                       0.005 * static_cast<double>(i % 5)};
    }
  }
  double gemm_blocked_ms = 1e300, gemm_naive_ms = 1e300;
  CMat c_blocked, c_naive;
  for (int rep = 0; rep < 3; ++rep) {
    t = clock::now();
    c_blocked = linalg::matmul_blocked(sj, xblk);
    gemm_blocked_ms = std::min(gemm_blocked_ms, elapsed_ms(t));
    t = clock::now();
    c_naive = matmul(sj, xblk);
    gemm_naive_ms = std::min(gemm_naive_ms, elapsed_ms(t));
  }
  double gemm_max_abs_diff = 0.0;
  for (index_t j = 0; j < c_blocked.cols(); ++j) {
    for (index_t i = 0; i < c_blocked.rows(); ++i) {
      gemm_max_abs_diff = std::max(gemm_max_abs_diff,
                                   std::abs(c_blocked(i, j) - c_naive(i, j)));
    }
  }
  // The blocked path runs the active backend table (possibly SIMD with
  // FMA contraction) while naive matmul is plain scalar, so the
  // agreement bound is the gemm forward-error tolerance from
  // backend.hpp: 8 * eps * k * max|A| * max_j sum_l |B(l,j)|.
  double sj_amax = 0.0, xblk_colsum = 0.0;
  for (index_t j = 0; j < sj.cols(); ++j) {
    for (index_t i = 0; i < sj.rows(); ++i) {
      sj_amax = std::max(sj_amax, std::abs(sj(i, j)));
    }
  }
  for (index_t j = 0; j < xblk.cols(); ++j) {
    double s = 0.0;
    for (index_t i = 0; i < xblk.rows(); ++i) s += std::abs(xblk(i, j));
    xblk_colsum = std::max(xblk_colsum, s);
  }
  const double gemm_tol = 8.0 * std::numeric_limits<double>::epsilon() *
                          static_cast<double>(sj.cols()) * sj_amax *
                          xblk_colsum;
  const bool gemm_matches = gemm_max_abs_diff <= gemm_tol;

  // Batched (reshape-trick) Kronecker block apply vs the per-column
  // base-class path; forward and adjoint must agree bit for bit.
  CMat xk(hit->op.cols(), 4);
  for (index_t j = 0; j < xk.cols(); ++j) {
    for (index_t i = 0; i < xk.rows(); ++i) {
      xk(i, j) = cxd{0.01 * static_cast<double>((i + j) % 11),
                     0.002 * static_cast<double>(i % 3)};
    }
  }
  constexpr int kKronReps = 100;
  double kron_batched_ms = 1e300, kron_percol_ms = 1e300;
  CMat y_batched, y_percol;
  for (int rep = 0; rep < 3; ++rep) {
    t = clock::now();
    for (int i = 0; i < kKronReps; ++i) {
      hit->op.apply_mat_into(xk, y_batched, nullptr);
    }
    kron_batched_ms = std::min(kron_batched_ms, elapsed_ms(t) / kKronReps);
    t = clock::now();
    for (int i = 0; i < kKronReps; ++i) {
      hit->op.LinearOperator::apply_mat_into(xk, y_percol, nullptr);
    }
    kron_percol_ms = std::min(kron_percol_ms, elapsed_ms(t) / kKronReps);
  }
  CMat xa_batched, xa_percol;
  hit->op.apply_adjoint_mat_into(y_batched, xa_batched, nullptr);
  hit->op.LinearOperator::apply_adjoint_mat_into(y_percol, xa_percol, nullptr);
  bool kron_identical = true;
  for (index_t j = 0; j < y_batched.cols() && kron_identical; ++j) {
    for (index_t i = 0; i < y_batched.rows(); ++i) {
      if (y_batched(i, j) != y_percol(i, j)) {
        kron_identical = false;
        break;
      }
    }
  }
  for (index_t j = 0; j < xa_batched.cols() && kron_identical; ++j) {
    for (index_t i = 0; i < xa_batched.rows(); ++i) {
      if (xa_batched(i, j) != xa_percol(i, j)) {
        kron_identical = false;
        break;
      }
    }
  }

  // Group FISTA with apply reuse (2 operator applications per iteration
  // via the momentum identity) vs the direct 3-application path, fixed
  // iteration count. Iterates agree to rounding, not bit-exactly, so
  // this flag is tolerance-based ("matches", not "identical").
  CMat yblk(hit->op.rows(), 3);
  for (index_t c = 0; c < yblk.cols(); ++c) {
    yblk.set_col(c,
                 measurement_for(kArray, 20 + static_cast<std::uint64_t>(c)));
  }
  sparse::SolveConfig gcfg;
  gcfg.max_iterations = 200;
  gcfg.tolerance = 0.0;
  gcfg.lipschitz_hint = hit->norm_sq;
  sparse::GroupSolveResult g_reuse, g_direct;
  double fista_reuse_ms = 1e300, fista_direct_ms = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    sparse::SolveConfig gc = gcfg;
    gc.reuse_applies = true;
    t = clock::now();
    g_reuse = sparse::solve_group_l1(hit->op, yblk, gc);
    fista_reuse_ms = std::min(fista_reuse_ms, elapsed_ms(t));
    gc.reuse_applies = false;
    t = clock::now();
    g_direct = sparse::solve_group_l1(hit->op, yblk, gc);
    fista_direct_ms = std::min(fista_direct_ms, elapsed_ms(t));
  }
  double fista_ref_max = 0.0, fista_diff_max = 0.0;
  for (index_t j = 0; j < g_direct.x.cols(); ++j) {
    for (index_t i = 0; i < g_direct.x.rows(); ++i) {
      fista_ref_max = std::max(fista_ref_max, std::abs(g_direct.x(i, j)));
      fista_diff_max = std::max(fista_diff_max,
                                std::abs(g_reuse.x(i, j) - g_direct.x(i, j)));
    }
  }
  const double fista_rel_diff =
      fista_diff_max / std::max(fista_ref_max, 1e-300);
  const bool fista_matches = fista_rel_diff <= 1e-6;

  // (2c) Per-backend kernel comparison: the three vectorized hot
  // kernels routed through the scalar table vs the SIMD one, with the
  // table pinned explicitly per call (everything else in this report
  // runs whatever dispatch selected — see the "machine" object).
  // Timings are best-of-5 with the tables alternated inside each rep;
  // the agreement flags diff the outputs against the per-kernel
  // tolerances documented in backend.hpp and are deterministic, so the
  // ci.sh *_matches_* grep gates them. The speedup check is
  // deliberately named *_ok, NOT *_matches_*: a timing ratio on a
  // shared host is a perf signal, not a correctness identity the smoke
  // leg should fail on.
  namespace be = linalg::backend;
  const bool simd_available = be::simd() != nullptr;
  constexpr double kEps = std::numeric_limits<double>::epsilon();
  auto mat_max_diff = [](const CMat& a, const CMat& b) {
    double v = 0.0;
    for (index_t j = 0; j < a.cols(); ++j) {
      for (index_t i = 0; i < a.rows(); ++i) {
        v = std::max(v, std::abs(a(i, j) - b(i, j)));
      }
    }
    return v;
  };

  // GEMM on the same joint-dictionary workload as the blocked/naive
  // ablation above (90 x 4641 dictionary times an 8-column block).
  double bkg_scalar_ms = 1e300, bkg_simd_ms = 1e300;
  double bkg_diff = 0.0, bkg_tol = 0.0;
  bool bkg_matches = false;
  {
    CMat g_scalar, g_simd;
    for (int rep = 0; rep < 5; ++rep) {
      t = clock::now();
      g_scalar = linalg::matmul_blocked(sj, xblk, nullptr, &be::scalar());
      bkg_scalar_ms = std::min(bkg_scalar_ms, elapsed_ms(t));
      if (simd_available) {
        t = clock::now();
        g_simd = linalg::matmul_blocked(sj, xblk, nullptr, be::simd());
        bkg_simd_ms = std::min(bkg_simd_ms, elapsed_ms(t));
      }
    }
    if (simd_available) {
      bkg_diff = mat_max_diff(g_scalar, g_simd);
      bkg_tol = gemm_tol;  // same shape and inputs as the ablation above
      bkg_matches = bkg_diff <= bkg_tol;
    }
  }

  // Soft threshold over a quarter-million coefficients straddling the
  // shrink boundary (magnitudes well above the simd squared-magnitude
  // underflow divergence documented in backend.hpp).
  double bks_scalar_ms = 1e300, bks_simd_ms = 1e300;
  double bks_diff = 0.0, bks_tol = 0.0;
  bool bks_matches = false;
  {
    const index_t nst = 1 << 18;
    CVec st_base(nst);
    double st_max = 0.0;
    for (index_t i = 0; i < nst; ++i) {
      st_base[i] = cxd{0.01 * static_cast<double>((i * 37 % 101) - 50),
                       0.01 * static_cast<double>((i * 53 % 89) - 44)};
      st_max = std::max(st_max, std::abs(st_base[i]));
    }
    const double st_t = 0.25;
    CVec st_scalar, st_simd;
    for (int rep = 0; rep < 5; ++rep) {
      st_scalar = st_base;
      t = clock::now();
      sparse::soft_threshold_inplace(st_scalar, st_t, &be::scalar());
      bks_scalar_ms = std::min(bks_scalar_ms, elapsed_ms(t));
      if (simd_available) {
        st_simd = st_base;
        t = clock::now();
        sparse::soft_threshold_inplace(st_simd, st_t, be::simd());
        bks_simd_ms = std::min(bks_simd_ms, elapsed_ms(t));
      }
    }
    if (simd_available) {
      for (index_t i = 0; i < nst; ++i) {
        bks_diff = std::max(bks_diff, std::abs(st_scalar[i] - st_simd[i]));
      }
      bks_tol = 4.0 * kEps * st_max;
      bks_matches = bks_diff <= bks_tol;
    }
  }

  // Steering build (the phase-recurrence kernel). The builders have no
  // backend parameter, so pin the process-global table via force() and
  // restore env/auto selection after. Unit-modulus entries, so the
  // phase_ramp tolerance (2 eps per recurrence step) scales with the
  // row count alone; x4 slack covers the sub-dictionary gain recurrence
  // layered on top.
  double bkr_scalar_ms = 1e300, bkr_simd_ms = 1e300;
  double bkr_diff = 0.0, bkr_tol = 0.0;
  bool bkr_matches = false;
  {
    CMat sj_scalar, sj_simd;
    for (int rep = 0; rep < 5; ++rep) {
      be::force(&be::scalar());
      t = clock::now();
      sj_scalar = dsp::steering_matrix_joint(aoa, toa, kArray);
      bkr_scalar_ms = std::min(bkr_scalar_ms, elapsed_ms(t));
      if (simd_available) {
        be::force(be::simd());
        t = clock::now();
        sj_simd = dsp::steering_matrix_joint(aoa, toa, kArray);
        bkr_simd_ms = std::min(bkr_simd_ms, elapsed_ms(t));
      }
    }
    be::force(nullptr);
    if (simd_available) {
      bkr_diff = mat_max_diff(sj_scalar, sj_simd);
      bkr_tol = 8.0 * kEps * static_cast<double>(sj_scalar.rows());
      bkr_matches = bkr_diff <= bkr_tol;
    }
  }

  // (3) fig6-style workload: RoArray over a few locations at medium SNR.
  bench::BenchOptions opts;
  opts.locations = 4;
  opts.packets = 8;
  opts.seed = 7;
  const sim::Testbed tb = sim::make_paper_testbed();
  std::mt19937_64 loc_rng(opts.seed);
  const auto clients =
      sim::sample_client_locations(opts.locations, tb.room, loc_rng);
  const std::vector<bench::System> systems = {bench::System::kRoArray};
  const sim::SnrBand band = sim::SnrBand::kMedium;

  // Each mode is deterministic per configuration, so best-of-3 timing
  // keeps the identity checks valid on whichever rep's samples we keep
  // while filtering out machine noise (the same policy as the solve
  // section above).
  std::vector<bench::SystemErrors> serial_percall, serial_cached,
      parallel_cached;
  double e2e_percall_ms = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    t = clock::now();
    serial_percall = bench::run_band(tb, clients, band, systems, opts);
    e2e_percall_ms = std::min(e2e_percall_ms, elapsed_ms(t));
  }

  bench::BenchOptions serial_opts = opts;
  serial_opts.threads = 1;
  bench::BenchRuntime rt1(serial_opts);
  double e2e_serial_cached_ms = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    t = clock::now();
    serial_cached =
        bench::run_band(tb, clients, band, systems, serial_opts, &rt1);
    e2e_serial_cached_ms = std::min(e2e_serial_cached_ms, elapsed_ms(t));
  }

  bench::BenchOptions par_opts = opts;
  par_opts.threads =
      std::max(4, runtime::ThreadPool::default_thread_count());
  bench::BenchRuntime rtn(par_opts);
  (void)rtn.cache.get(aoa, toa, kArray);  // warm, like a long-running service
  double e2e_parallel_ms = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    t = clock::now();
    parallel_cached =
        bench::run_band(tb, clients, band, systems, par_opts, &rtn);
    e2e_parallel_ms = std::min(e2e_parallel_ms, elapsed_ms(t));
  }

  const bool cached_identical = same_samples(serial_percall, serial_cached);
  const bool parallel_identical = same_samples(serial_cached, parallel_cached);

  // (4) Coarse-to-fine factored dictionary on the same fig6 workload,
  // serial per-call — directly comparable to serial_percall_ms above.
  // The pruned solve is not bit-identical to the full-grid solve, so
  // agreement is tolerance-based: every error sample must sit within
  // two fine-grid steps of its full-solve counterpart ("matches" flags;
  // scripts/ci.sh fails the smoke leg if any comes out false).
  double cf_percall_ms = 1e300, cf_cached_ms = 1e300;
  bool cf_aoa_matches_full = false;
  bool cf_count_matches_full = false;
  double cf_max_aoa_dev_deg = 0.0;
  if (coarse_fine) {
    bench::BenchOptions cf_opts = opts;
    cf_opts.coarse_fine = true;
    std::vector<bench::SystemErrors> cf_percall, cf_cached;
    for (int rep = 0; rep < 3; ++rep) {
      t = clock::now();
      cf_percall = bench::run_band(tb, clients, band, systems, cf_opts);
      cf_percall_ms = std::min(cf_percall_ms, elapsed_ms(t));
    }
    bench::BenchOptions cf_serial_opts = cf_opts;
    cf_serial_opts.threads = 1;
    bench::BenchRuntime cf_rt(cf_serial_opts);
    for (int rep = 0; rep < 3; ++rep) {
      t = clock::now();
      cf_cached =
          bench::run_band(tb, clients, band, systems, cf_serial_opts, &cf_rt);
      cf_cached_ms = std::min(cf_cached_ms, elapsed_ms(t));
    }

    // AoA error samples are angle_diff_deg against the same per-AP
    // truth in the same deterministic order, so sample-by-sample
    // deviation bounds how far the pruned solve moved each pick.
    const double aoa_tol = 2.0 * dsp::default_aoa_grid().step();
    cf_count_matches_full =
        cf_percall.size() == serial_percall.size() &&
        cf_percall.front().aoa_deg.size() ==
            serial_percall.front().aoa_deg.size();
    if (cf_count_matches_full) {
      const auto& full_s = serial_percall.front().aoa_deg;
      const auto& cf_s = cf_percall.front().aoa_deg;
      for (std::size_t i = 0; i < full_s.size(); ++i) {
        cf_max_aoa_dev_deg =
            std::max(cf_max_aoa_dev_deg, std::abs(cf_s[i] - full_s[i]));
      }
      cf_aoa_matches_full = cf_max_aoa_dev_deg <= aoa_tol;
    }
  }

  const bool written = bench::write_json_report(path, [&](eval::JsonWriter& w) {
    w.begin_object();
    bench::emit_machine_provenance(w, par_opts.threads);
    w.key("workload").begin_object();
    w.key("figure").value("fig6-subset");
    w.key("locations").value(static_cast<std::int64_t>(opts.locations));
    w.key("packets").value(static_cast<std::int64_t>(opts.packets));
    w.key("aps").value(6);
    w.key("band").value("medium");
    w.end_object();
    w.key("op_setup").begin_object();
    w.key("uncached_ms").value(setup_uncached_ms);
    w.key("cached_hit_ms").value(setup_cached_ms);
    w.key("speedup").value(setup_uncached_ms / std::max(setup_cached_ms, 1e-6));
    w.end_object();
    w.key("solve").begin_object();
    w.key("lipschitz_per_call_ms").value(solve_percall_ms);
    w.key("cached_hint_ms").value(solve_cached_ms);
    w.key("speedup").value(solve_percall_ms / std::max(solve_cached_ms, 1e-6));
    w.end_object();
    w.key("kernels").begin_object();
    w.key("gemm_blocked_ms").value(gemm_blocked_ms);
    w.key("gemm_naive_ms").value(gemm_naive_ms);
    w.key("gemm_blocked_speedup")
        .value(gemm_naive_ms / std::max(gemm_blocked_ms, 1e-6));
    w.key("gemm_blocked_max_abs_diff").value(gemm_max_abs_diff);
    w.key("gemm_blocked_tolerance").value(gemm_tol);
    w.key("gemm_blocked_matches_naive").value(gemm_matches);
    w.key("kron_apply_mat_batched_ms").value(kron_batched_ms);
    w.key("kron_apply_mat_percolumn_ms").value(kron_percol_ms);
    w.key("kron_batched_speedup")
        .value(kron_percol_ms / std::max(kron_batched_ms, 1e-6));
    w.key("kron_batched_identical_to_percolumn").value(kron_identical);
    w.key("fista_reuse_ms").value(fista_reuse_ms);
    w.key("fista_direct_ms").value(fista_direct_ms);
    w.key("fista_reuse_speedup")
        .value(fista_direct_ms / std::max(fista_reuse_ms, 1e-6));
    w.key("fista_reuse_max_rel_diff").value(fista_rel_diff);
    w.key("fista_reuse_matches_direct").value(fista_matches);
    w.end_object();
    w.key("backend_kernels").begin_object();
    w.key("simd_available").value(simd_available);
    w.key("gemm").begin_object();
    w.key("scalar_ms").value(bkg_scalar_ms);
    if (simd_available) {
      w.key("simd_ms").value(bkg_simd_ms);
      w.key("simd_speedup").value(bkg_scalar_ms / std::max(bkg_simd_ms, 1e-6));
      w.key("simd_speedup_target").value(3.0);
      w.key("simd_speedup_ok")
          .value(bkg_scalar_ms / std::max(bkg_simd_ms, 1e-6) >= 3.0);
      w.key("max_abs_diff").value(bkg_diff);
      w.key("tolerance").value(bkg_tol);
      w.key("simd_matches_scalar").value(bkg_matches);
    }
    w.end_object();
    w.key("soft_threshold").begin_object();
    w.key("scalar_ms").value(bks_scalar_ms);
    if (simd_available) {
      w.key("simd_ms").value(bks_simd_ms);
      w.key("simd_speedup").value(bks_scalar_ms / std::max(bks_simd_ms, 1e-6));
      w.key("max_abs_diff").value(bks_diff);
      w.key("tolerance").value(bks_tol);
      w.key("simd_matches_scalar").value(bks_matches);
    }
    w.end_object();
    w.key("steering_build").begin_object();
    w.key("scalar_ms").value(bkr_scalar_ms);
    if (simd_available) {
      w.key("simd_ms").value(bkr_simd_ms);
      w.key("simd_speedup").value(bkr_scalar_ms / std::max(bkr_simd_ms, 1e-6));
      w.key("max_abs_diff").value(bkr_diff);
      w.key("tolerance").value(bkr_tol);
      w.key("simd_matches_scalar").value(bkr_matches);
    }
    w.end_object();
    w.end_object();
    w.key("fig6_end_to_end").begin_object();
    w.key("serial_percall_ms").value(e2e_percall_ms);
    w.key("serial_cached_ms").value(e2e_serial_cached_ms);
    w.key("parallel_cached_ms").value(e2e_parallel_ms);
    w.key("cached_speedup_vs_percall")
        .value(e2e_percall_ms / std::max(e2e_serial_cached_ms, 1e-6));
    w.key("parallel_cached_speedup_vs_percall")
        .value(e2e_percall_ms / std::max(e2e_parallel_ms, 1e-6));
    w.key("cached_identical_to_percall").value(cached_identical);
    w.key("parallel_identical_to_serial").value(parallel_identical);
    w.end_object();
    if (coarse_fine) {
      w.key("coarse_to_fine").begin_object();
      w.key("serial_percall_ms").value(cf_percall_ms);
      w.key("serial_cached_ms").value(cf_cached_ms);
      w.key("speedup_vs_full_percall")
          .value(e2e_percall_ms / std::max(cf_percall_ms, 1e-6));
      w.key("cached_speedup_vs_full_cached")
          .value(e2e_serial_cached_ms / std::max(cf_cached_ms, 1e-6));
      w.key("max_aoa_sample_dev_deg").value(cf_max_aoa_dev_deg);
      w.key("sample_count_matches_full").value(cf_count_matches_full);
      w.key("aoa_matches_full").value(cf_aoa_matches_full);
      w.end_object();
    }
    w.end_object();
  });
  if (!written) return false;
  std::printf("wrote %s (parallel identical to serial: %s)\n", path,
              parallel_identical ? "yes" : "NO");
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // --json [path] runs the runtime/cache report (and nothing else unless
  // benchmark flags follow); with no flags the google-benchmark suite
  // runs as before. --backend-info prints the compute-backend dispatch
  // decision and exits (the ci.sh backends leg probes it to skip the
  // simd pass gracefully on hardware without the vector units).
  const char* json_path = nullptr;
  bool coarse_fine = false;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = (i + 1 < argc && argv[i + 1][0] != '-') ? argv[++i]
                                                          : "BENCH_micro.json";
    } else if (std::strcmp(argv[i], "--coarse-fine") == 0) {
      coarse_fine = true;
    } else if (std::strcmp(argv[i], "--backend-info") == 0) {
      const auto d = roarray::linalg::backend::dispatch_info();
      std::printf(
          "requested=%s selected=%s simd_compiled=%d simd_supported=%d "
          "cpu_features=%s\n",
          d.requested, d.selected->name, d.simd_compiled ? 1 : 0,
          d.simd_supported ? 1 : 0, roarray::linalg::backend::cpu_features());
      return 0;
    } else {
      rest.push_back(argv[i]);
    }
  }
  if (json_path != nullptr) {
    if (!write_micro_report(json_path, coarse_fine)) return 1;
    if (rest.size() == 1) return 0;
  }
  int rest_argc = static_cast<int>(rest.size());
  benchmark::Initialize(&rest_argc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, rest.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
