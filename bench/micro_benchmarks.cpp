// Micro-benchmarks (google-benchmark): solver and substrate costs,
// including the design-choice ablations called out in DESIGN.md —
// Kronecker vs dense steering operator, FISTA vs ISTA vs ADMM, and the
// Section III-C complexity scaling of the joint solve.
#include <benchmark/benchmark.h>

#include <random>

#include "channel/csi.hpp"
#include "core/roarray.hpp"
#include "dsp/fft.hpp"
#include "dsp/sanitize.hpp"
#include "dsp/steering.hpp"
#include "linalg/eig.hpp"
#include "linalg/svd.hpp"
#include "music/covariance.hpp"
#include "music/music.hpp"
#include "music/smoothing.hpp"
#include "sparse/admm.hpp"
#include "sparse/fista.hpp"
#include "sparse/l1svd.hpp"
#include "sparse/omp.hpp"
#include "sparse/reweighted.hpp"
#include "sparse/operator.hpp"

namespace {

using namespace roarray;
using linalg::CMat;
using linalg::CVec;
using linalg::cxd;
using linalg::index_t;

const dsp::ArrayConfig kArray;

CVec measurement_for(const dsp::ArrayConfig& arr, std::uint64_t seed) {
  channel::Path d;
  d.aoa_deg = 110.0;
  d.toa_s = 60e-9;
  d.gain = cxd{1.0, 0.0};
  channel::Path r;
  r.aoa_deg = 50.0;
  r.toa_s = 240e-9;
  r.gain = cxd{0.5, 0.2};
  std::mt19937_64 rng(seed);
  CMat csi = channel::synthesize_csi({d, r}, arr);
  channel::add_noise(csi, 15.0, rng);
  return core::stack_csi(csi);
}

void BM_SteeringMatrixJointBuild(benchmark::State& state) {
  const dsp::Grid aoa(0.0, 180.0, 91);
  const dsp::Grid toa(0.0, 784e-9, 50);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::steering_matrix_joint(aoa, toa, kArray));
  }
}
BENCHMARK(BM_SteeringMatrixJointBuild)->Unit(benchmark::kMillisecond);

/// Ablation: dense matvec on the materialized Eq. 16 matrix ...
void BM_DenseOperatorApply(benchmark::State& state) {
  const dsp::Grid aoa(0.0, 180.0, 91);
  const dsp::Grid toa(0.0, 784e-9, 50);
  const sparse::DenseOperator op(dsp::steering_matrix_joint(aoa, toa, kArray));
  const CVec x(op.cols(), cxd{0.01, 0.01});
  for (auto _ : state) {
    benchmark::DoNotOptimize(op.apply(x));
  }
}
BENCHMARK(BM_DenseOperatorApply)->Unit(benchmark::kMicrosecond);

/// ... vs the Kronecker-structured operator (the design DESIGN.md keeps).
void BM_KroneckerOperatorApply(benchmark::State& state) {
  const dsp::Grid aoa(0.0, 180.0, 91);
  const dsp::Grid toa(0.0, 784e-9, 50);
  const sparse::KroneckerOperator op(dsp::steering_matrix_aoa(aoa, kArray),
                                     dsp::steering_matrix_toa(toa, kArray));
  const CVec x(op.cols(), cxd{0.01, 0.01});
  for (auto _ : state) {
    benchmark::DoNotOptimize(op.apply(x));
  }
}
BENCHMARK(BM_KroneckerOperatorApply)->Unit(benchmark::kMicrosecond);

/// Section III-C: joint-solve cost vs grid size (N_theta * N_tau).
void BM_JointSolveScaling(benchmark::State& state) {
  const auto ntheta = static_cast<index_t>(state.range(0));
  const auto ntau = static_cast<index_t>(state.range(1));
  const dsp::Grid aoa(0.0, 180.0, ntheta);
  const dsp::Grid toa(0.0, 784e-9, ntau);
  const sparse::KroneckerOperator op(dsp::steering_matrix_aoa(aoa, kArray),
                                     dsp::steering_matrix_toa(toa, kArray));
  const CVec y = measurement_for(kArray, 1);
  sparse::SolveConfig cfg;
  cfg.max_iterations = 100;
  cfg.tolerance = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::solve_l1(op, y, cfg));
  }
  state.SetLabel("grid=" + std::to_string(ntheta) + "x" + std::to_string(ntau));
}
BENCHMARK(BM_JointSolveScaling)
    ->Args({46, 25})
    ->Args({91, 50})
    ->Args({181, 50})
    ->Unit(benchmark::kMillisecond);

/// Ablation: the three solvers on the identical objective.
void BM_SolverFista(benchmark::State& state) {
  const dsp::Grid aoa(0.0, 180.0, 91);
  const dsp::Grid toa(0.0, 784e-9, 50);
  const sparse::KroneckerOperator op(dsp::steering_matrix_aoa(aoa, kArray),
                                     dsp::steering_matrix_toa(toa, kArray));
  const CVec y = measurement_for(kArray, 2);
  sparse::SolveConfig cfg;
  cfg.max_iterations = 400;
  for (auto _ : state) {
    const auto r = sparse::solve_l1(op, y, cfg);
    benchmark::DoNotOptimize(r.iterations);
  }
}
BENCHMARK(BM_SolverFista)->Unit(benchmark::kMillisecond);

void BM_SolverIsta(benchmark::State& state) {
  const dsp::Grid aoa(0.0, 180.0, 91);
  const dsp::Grid toa(0.0, 784e-9, 50);
  const sparse::KroneckerOperator op(dsp::steering_matrix_aoa(aoa, kArray),
                                     dsp::steering_matrix_toa(toa, kArray));
  const CVec y = measurement_for(kArray, 2);
  sparse::SolveConfig cfg;
  cfg.algorithm = sparse::Algorithm::kIsta;
  cfg.max_iterations = 400;
  for (auto _ : state) {
    const auto r = sparse::solve_l1(op, y, cfg);
    benchmark::DoNotOptimize(r.iterations);
  }
}
BENCHMARK(BM_SolverIsta)->Unit(benchmark::kMillisecond);

void BM_SolverAdmm(benchmark::State& state) {
  const dsp::Grid aoa(0.0, 180.0, 91);
  const dsp::Grid toa(0.0, 784e-9, 50);
  const sparse::KroneckerOperator op(dsp::steering_matrix_aoa(aoa, kArray),
                                     dsp::steering_matrix_toa(toa, kArray));
  const CVec y = measurement_for(kArray, 2);
  sparse::AdmmConfig cfg;
  cfg.max_iterations = 200;
  for (auto _ : state) {
    const auto r = sparse::solve_l1_admm(op, y, cfg);
    benchmark::DoNotOptimize(r.iterations);
  }
}
BENCHMARK(BM_SolverAdmm)->Unit(benchmark::kMillisecond);

void BM_MusicJointSpectrum(benchmark::State& state) {
  channel::Path d;
  d.aoa_deg = 110.0;
  d.toa_s = 60e-9;
  d.gain = cxd{1.0, 0.0};
  std::mt19937_64 rng(3);
  CMat csi = channel::synthesize_csi({d}, kArray);
  channel::add_noise(csi, 15.0, rng);
  const music::SmoothingConfig sc;
  CMat r = music::sample_covariance(music::smooth_csi(csi, sc));
  r = music::forward_backward_average(r);
  const dsp::Grid aoa(0.0, 180.0, 91);
  const dsp::Grid toa(0.0, 784e-9, 50);
  for (auto _ : state) {
    benchmark::DoNotOptimize(music::music_spectrum_joint(
        r, 3, aoa, toa, kArray, sc.sub_antennas, sc.sub_carriers));
  }
}
BENCHMARK(BM_MusicJointSpectrum)->Unit(benchmark::kMillisecond);

void BM_EigHermitian(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  std::mt19937_64 rng(4);
  std::normal_distribution<double> g(0.0, 1.0);
  CMat b(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) b(i, j) = cxd{g(rng), g(rng)};
  const CMat a = matmul(b, adjoint(b));
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::eig_hermitian(a));
  }
}
BENCHMARK(BM_EigHermitian)->Arg(3)->Arg(30)->Arg(90)->Unit(benchmark::kMicrosecond);

void BM_SvdSnapshots(benchmark::State& state) {
  std::mt19937_64 rng(5);
  std::normal_distribution<double> g(0.0, 1.0);
  CMat y(90, 30);
  for (index_t j = 0; j < 30; ++j)
    for (index_t i = 0; i < 90; ++i) y(i, j) = cxd{g(rng), g(rng)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::reduce_snapshots(y, 5));
  }
}
BENCHMARK(BM_SvdSnapshots)->Unit(benchmark::kMillisecond);

void BM_SanitizeCsi(benchmark::State& state) {
  channel::Path d;
  d.aoa_deg = 95.0;
  d.toa_s = 80e-9;
  d.gain = cxd{1.0, 0.0};
  channel::CsiImpairments imp;
  imp.detection_delay_s = 120e-9;
  const CMat csi = channel::synthesize_csi({d}, kArray, imp);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::sanitize_csi(csi, kArray));
  }
}
BENCHMARK(BM_SanitizeCsi)->Unit(benchmark::kMicrosecond);

/// Ablation: fuse-then-solve vs solve-every-packet at equal data volume.
void BM_FusionVsPerPacket(benchmark::State& state) {
  const bool fuse = state.range(0) == 1;
  channel::Path d;
  d.aoa_deg = 100.0;
  d.toa_s = 60e-9;
  d.gain = cxd{1.0, 0.0};
  std::mt19937_64 rng(6);
  channel::BurstConfig bc;
  bc.num_packets = 15;
  bc.snr_db = 10.0;
  const auto burst = channel::generate_burst({d}, kArray, bc, rng);
  core::RoArrayConfig cfg;
  cfg.solver.max_iterations = 150;
  for (auto _ : state) {
    if (fuse) {
      benchmark::DoNotOptimize(core::roarray_estimate(burst.csi, cfg, kArray));
    } else {
      for (const auto& pkt : burst.csi) {
        const std::vector<CMat> one = {pkt};
        benchmark::DoNotOptimize(core::roarray_estimate(one, cfg, kArray));
      }
    }
  }
  state.SetLabel(fuse ? "l1-SVD fusion (one solve)" : "per-packet (15 solves)");
}
BENCHMARK(BM_FusionVsPerPacket)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

void BM_SolverOmp(benchmark::State& state) {
  const dsp::Grid aoa(0.0, 180.0, 91);
  const dsp::Grid toa(0.0, 784e-9, 50);
  const sparse::KroneckerOperator op(dsp::steering_matrix_aoa(aoa, kArray),
                                     dsp::steering_matrix_toa(toa, kArray));
  const CVec y = measurement_for(kArray, 2);
  sparse::OmpConfig cfg;
  cfg.max_atoms = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::solve_omp(op, y, cfg));
  }
}
BENCHMARK(BM_SolverOmp)->Unit(benchmark::kMillisecond);

void BM_SolverReweighted(benchmark::State& state) {
  const dsp::Grid aoa(0.0, 180.0, 91);
  const dsp::Grid toa(0.0, 784e-9, 50);
  const sparse::KroneckerOperator op(dsp::steering_matrix_aoa(aoa, kArray),
                                     dsp::steering_matrix_toa(toa, kArray));
  const CVec y = measurement_for(kArray, 2);
  sparse::ReweightedConfig cfg;
  cfg.rounds = 3;
  cfg.inner.max_iterations = 150;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::solve_reweighted_l1(op, y, cfg));
  }
}
BENCHMARK(BM_SolverReweighted)->Unit(benchmark::kMillisecond);

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  CVec x(n);
  for (index_t i = 0; i < n; ++i) {
    x[i] = cxd{std::sin(0.1 * static_cast<double>(i)), 0.2};
  }
  for (auto _ : state) {
    CVec copy = x;
    dsp::fft_inplace(copy);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_Fft)->Arg(128)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_PowerDelayProfile(benchmark::State& state) {
  channel::Path d;
  d.aoa_deg = 95.0;
  d.toa_s = 120e-9;
  d.gain = cxd{1.0, 0.0};
  const CMat csi = channel::synthesize_csi({d}, kArray);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::power_delay_profile(csi, kArray));
  }
}
BENCHMARK(BM_PowerDelayProfile)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
