// Load generator for the serve layer: records (or loads) a CSI trace,
// replays it as a stream of localization requests, and measures
// sustained throughput and latency percentiles for
//   * the single LocalizationService with batching off (max_batch = 1),
//   * the single service with dynamic batching (--max-batch), and
//   * a ShardedService sweep (--shards, default 1,2,4): per-shard
//     dispatchers, sticky client routing, queue-depth admission
//     shedding, and cross-shard work stealing.
// It also replays the trace through ShardedService{k, dispatchers = 0}
// in deterministic pump/drain mode for every swept k and records
// whether the per-request results are bit-identical across shard
// counts ("replay_shards_identical" — a correctness flag the CI smoke
// leg greps, not a perf number). Emits BENCH_serve.json.
//
// Logical service ticks are mapped to wall microseconds here (the bench
// owns the clock; the library never reads one). AP poses are not part
// of the trace format — deployment geometry is replay-time input — so
// this bench always places APs at the paper testbed poses.
#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "eval/cdf.hpp"
#include "io/trace_reader.hpp"
#include "io/trace_writer.hpp"
#include "serve/service.hpp"
#include "serve/sharded.hpp"
#include "sim/recorder.hpp"
#include "sim/scenario.hpp"
#include "sim/testbed.hpp"

namespace {

using namespace roarray;
using linalg::index_t;

struct Options {
  index_t clients = 8;      ///< distinct client rounds in a recorded trace.
  index_t packets = 6;      ///< packets per AP burst when recording.
  index_t aps = 3;          ///< APs heard per round when recording.
  std::uint64_t seed = 7;
  int threads = 0;          ///< estimation pool lanes; 0 = hardware count.
  index_t requests = 64;    ///< total submissions per mode.
  index_t max_batch = 8;    ///< dynamic-mode batch bound.
  index_t queue_capacity = 64;
  index_t admission_depth = 0;  ///< sharded early-shed bound; 0 = capacity.
  std::uint64_t linger_us = 0;
  std::uint64_t deadline_us = 0;
  int iterations = 120;     ///< FISTA iteration cap per solve.
  std::vector<int> shard_sweep = {1, 2, 4};
  index_t replay_requests = 24;  ///< per-k deterministic replay check size.
  std::string trace;        ///< load this trace instead of recording.
  /// Canonical trace path: the committed artifact at the repo root.
  /// When neither --trace nor --record is given and this file exists,
  /// it is replayed rather than overwritten, so a bare run from the
  /// repo root is reproducible and never clobbers the committed trace.
  std::string record = "BENCH_serve_trace.bin";
  bool record_forced = false;  ///< --record given: always re-record.
  std::string json = "BENCH_serve.json";
};

std::vector<int> parse_int_list(const char* s) {
  std::vector<int> out;
  const char* p = s;
  while (*p != '\0') {
    char* end = nullptr;
    const long v = std::strtol(p, &end, 10);
    if (end == p) break;
    out.push_back(static_cast<int>(v));
    p = end;
    while (*p == ',' || *p == ' ') ++p;
  }
  return out;
}

Options parse_options(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--clients") == 0) {
      o.clients = std::atoll(need_value("--clients"));
    } else if (std::strcmp(argv[i], "--packets") == 0) {
      o.packets = std::atoll(need_value("--packets"));
    } else if (std::strcmp(argv[i], "--aps") == 0) {
      o.aps = std::atoll(need_value("--aps"));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      o.seed = static_cast<std::uint64_t>(std::atoll(need_value("--seed")));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      o.threads = std::atoi(need_value("--threads"));
    } else if (std::strcmp(argv[i], "--requests") == 0) {
      o.requests = std::atoll(need_value("--requests"));
    } else if (std::strcmp(argv[i], "--max-batch") == 0) {
      o.max_batch = std::atoll(need_value("--max-batch"));
    } else if (std::strcmp(argv[i], "--queue-capacity") == 0) {
      o.queue_capacity = std::atoll(need_value("--queue-capacity"));
    } else if (std::strcmp(argv[i], "--admission-depth") == 0) {
      o.admission_depth = std::atoll(need_value("--admission-depth"));
    } else if (std::strcmp(argv[i], "--linger-us") == 0) {
      o.linger_us =
          static_cast<std::uint64_t>(std::atoll(need_value("--linger-us")));
    } else if (std::strcmp(argv[i], "--deadline-us") == 0) {
      o.deadline_us =
          static_cast<std::uint64_t>(std::atoll(need_value("--deadline-us")));
    } else if (std::strcmp(argv[i], "--iterations") == 0) {
      o.iterations = std::atoi(need_value("--iterations"));
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      o.shard_sweep = parse_int_list(need_value("--shards"));
    } else if (std::strcmp(argv[i], "--replay-requests") == 0) {
      o.replay_requests = std::atoll(need_value("--replay-requests"));
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      o.trace = need_value("--trace");
    } else if (std::strcmp(argv[i], "--record") == 0) {
      o.record = need_value("--record");
      o.record_forced = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      o.json = need_value("--json");
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "options: --clients N --packets P --aps A --seed S --threads T\n"
          "         --requests R --max-batch B --queue-capacity Q\n"
          "         --admission-depth D --linger-us L --deadline-us D\n"
          "         --iterations I --shards K1,K2,... --replay-requests R\n"
          "         --trace PATH | --record PATH   --json PATH\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      std::exit(2);
    }
  }
  if (o.clients < 1 || o.packets < 1 || o.aps < 1 || o.requests < 1 ||
      o.max_batch < 1 || o.queue_capacity < 1 || o.threads < 0 ||
      o.iterations < 1 || o.admission_depth < 0 || o.replay_requests < 1 ||
      o.shard_sweep.empty()) {
    std::fprintf(stderr, "all counts must be >= 1 (threads/admission >= 0)\n");
    std::exit(2);
  }
  for (const int k : o.shard_sweep) {
    if (k < 1) {
      std::fprintf(stderr, "--shards entries must be >= 1\n");
      std::exit(2);
    }
  }
  return o;
}

int effective_threads(const Options& o) {
  return o.threads > 0 ? o.threads : runtime::ThreadPool::default_thread_count();
}

/// Synthesizes a trace: `clients` rounds, each heard by the first
/// `aps` paper-testbed APs, recorded packet-by-packet.
void record_trace(const Options& o) {
  sim::Testbed tb = sim::make_paper_testbed();
  if (o.aps < static_cast<index_t>(tb.aps.size())) {
    tb.aps.resize(static_cast<std::size_t>(o.aps));
  }
  std::mt19937_64 rng(o.seed);
  const auto clients = sim::sample_client_locations(o.clients, tb.room, rng);
  sim::ScenarioConfig scfg = sim::scenario_for_band(sim::SnrBand::kHigh);
  scfg.num_packets = o.packets;
  io::TraceWriter writer(o.record, scfg.array);
  std::uint64_t tick = 0;
  for (std::size_t c = 0; c < clients.size(); ++c) {
    const auto ms = sim::generate_measurements(tb, clients[c], scfg, rng);
    tick = sim::record_round(writer, ms, static_cast<std::uint64_t>(c), tick);
  }
  writer.flush();
  std::printf("recorded %llu records to %s\n",
              static_cast<unsigned long long>(writer.records_written()),
              o.record.c_str());
}

serve::ServeConfig shard_config(const std::vector<channel::ApPose>& poses,
                                const dsp::ArrayConfig& array,
                                const channel::Room& room, index_t max_batch,
                                const Options& o, int dispatchers) {
  serve::ServeConfig cfg;
  cfg.estimator.solver.max_iterations = o.iterations;
  cfg.array = array;
  cfg.localize.room = room;
  cfg.ap_poses = poses;
  cfg.max_batch = max_batch;
  cfg.queue_capacity = o.queue_capacity;
  cfg.batch_linger_ticks = o.linger_us;
  cfg.deadline_ticks = o.deadline_us;
  cfg.dispatchers = dispatchers;
  return cfg;
}

serve::Request make_request(const io::ClientRound& round,
                            std::uint64_t client_id, serve::Tick tick) {
  serve::Request req;
  req.client_id = client_id;
  req.submit_tick = tick;
  req.aps.reserve(round.ap_ids.size());
  for (std::size_t a = 0; a < round.ap_ids.size(); ++a) {
    req.aps.push_back({round.ap_ids[a], round.bursts[a]});
  }
  return req;
}

struct ModeResult {
  index_t max_batch = 1;
  int shards = 0;  ///< 0 for the single-service modes.
  double wall_ms = 0.0;
  double sustained_rps = 0.0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0, mean_ms = 0.0;
  serve::ServiceStats stats;  ///< aggregate across shards when shards > 0.
  std::uint64_t shed_admission = 0;
  std::uint64_t steal_events = 0;
  std::uint64_t stolen_requests = 0;
};

/// Drives `svc` (LocalizationService or ShardedService — same submit /
/// advance_time / drain / stop surface) with o.requests submissions,
/// retrying on kQueueFull backpressure, a 100 us wall-tick pusher
/// running alongside. `spread_clients` replaces the trace client id
/// with the submission index so sticky routing exercises every shard
/// (the committed trace holds only a handful of distinct clients).
/// Returns the wall time; the caller snapshots stats afterwards.
template <typename Service>
double run_load(Service& svc, const std::vector<io::ClientRound>& rounds,
                const Options& o, bool spread_clients) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  auto tick_now = [&t0] {
    return static_cast<serve::Tick>(
        std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                              t0)
            .count());
  };

  // Push wall time into the service so linger windows, deadlines, and
  // completion timestamps track reality while the submitter is blocked.
  std::atomic<bool> ticker_stop{false};
  std::thread ticker([&] {
    while (!ticker_stop.load(std::memory_order_relaxed)) {
      svc.advance_time(tick_now());
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });

  for (index_t r = 0; r < o.requests; ++r) {
    const io::ClientRound& round =
        rounds[static_cast<std::size_t>(r) % rounds.size()];
    const std::uint64_t client =
        spread_clients ? static_cast<std::uint64_t>(r) : round.client_id;
    for (;;) {
      const serve::SubmitStatus st =
          svc.submit(make_request(round, client, tick_now()), {});
      if (st == serve::SubmitStatus::kAccepted) break;
      if (st != serve::SubmitStatus::kQueueFull) {
        std::fprintf(stderr, "submit rejected: %s\n",
                     serve::submit_status_name(st));
        std::exit(1);
      }
      std::this_thread::yield();
    }
  }
  svc.drain();
  const double wall_ms = static_cast<double>(tick_now()) / 1000.0;
  ticker_stop.store(true, std::memory_order_relaxed);
  ticker.join();
  svc.stop();
  return wall_ms;
}

void fill_metrics(ModeResult& m, const serve::ServiceStats& stats,
                  double wall_ms) {
  m.wall_ms = wall_ms;
  m.stats = stats;
  const auto completed = stats.completed_ok + stats.completed_no_observations;
  m.sustained_rps =
      static_cast<double>(completed) / std::max(wall_ms / 1000.0, 1e-9);
  if (!stats.latency_ticks.empty()) {
    const eval::Cdf lat(stats.latency_ticks);
    m.p50_ms = lat.percentile(0.5) / 1000.0;
    m.p95_ms = lat.percentile(0.95) / 1000.0;
    m.p99_ms = lat.percentile(0.99) / 1000.0;
    m.mean_ms = lat.mean() / 1000.0;
  }
}

ModeResult run_mode(const std::vector<io::ClientRound>& rounds,
                    const std::vector<channel::ApPose>& poses,
                    const dsp::ArrayConfig& array, const channel::Room& room,
                    index_t max_batch, const Options& o) {
  serve::ServeConfig cfg = shard_config(poses, array, room, max_batch, o, 1);

  // Fresh runtime per mode so neither benefits from the other's warmup;
  // the operator is pre-built so both start warm.
  runtime::OperatorCache cache;
  runtime::ThreadPool pool(effective_threads(o));
  (void)cache.get(cfg.estimator.aoa_grid, cfg.estimator.toa_grid, array);
  serve::LocalizationService svc(cfg, {&cache, &pool});

  ModeResult m;
  m.max_batch = max_batch;
  const double wall_ms = run_load(svc, rounds, o, /*spread_clients=*/false);
  fill_metrics(m, svc.stats(), wall_ms);
  return m;
}

ModeResult run_shard_mode(const std::vector<io::ClientRound>& rounds,
                          const std::vector<channel::ApPose>& poses,
                          const dsp::ArrayConfig& array,
                          const channel::Room& room, int shards,
                          const Options& o) {
  serve::ShardedConfig cfg;
  cfg.shard = shard_config(poses, array, room, o.max_batch, o, 1);
  cfg.shards = shards;
  cfg.admission_depth = o.admission_depth;

  runtime::ThreadPool pool(effective_threads(o));
  serve::ShardedService svc(cfg, &pool);

  ModeResult m;
  m.max_batch = o.max_batch;
  m.shards = shards;
  const double wall_ms = run_load(svc, rounds, o, /*spread_clients=*/true);
  const serve::ShardedStats stats = svc.stats();
  fill_metrics(m, stats.aggregate, wall_ms);
  m.shed_admission = stats.shed_admission;
  m.steal_events = stats.steal_events;
  m.stolen_requests = stats.stolen_requests;
  return m;
}

// --- deterministic replay fingerprint ---------------------------------------

/// Bit pattern of every numeric field of a response, in a fixed order,
/// so two replays can be compared for exact equality.
std::vector<std::uint64_t> response_bits(const serve::Response& r) {
  std::vector<std::uint64_t> bits;
  bits.push_back(static_cast<std::uint64_t>(r.status));
  bits.push_back(r.client_id);
  bits.push_back(r.location.valid ? 1u : 0u);
  bits.push_back(std::bit_cast<std::uint64_t>(r.location.position.x));
  bits.push_back(std::bit_cast<std::uint64_t>(r.location.position.y));
  bits.push_back(std::bit_cast<std::uint64_t>(r.location.cost));
  for (const serve::ApEstimate& ae : r.ap_estimates) {
    bits.push_back(ae.ap_id);
    bits.push_back(ae.valid ? 1u : 0u);
    bits.push_back(std::bit_cast<std::uint64_t>(ae.aoa_deg));
    bits.push_back(std::bit_cast<std::uint64_t>(ae.toa_s));
    bits.push_back(std::bit_cast<std::uint64_t>(ae.power));
    bits.push_back(std::bit_cast<std::uint64_t>(ae.weight));
  }
  return bits;
}

/// Replays `n` requests through ShardedService{shards, dispatchers=0}
/// in deterministic pump/drain mode (logical ticks = submission index)
/// and returns the per-submission result fingerprints.
std::vector<std::vector<std::uint64_t>> replay_fingerprint(
    const std::vector<io::ClientRound>& rounds,
    const std::vector<channel::ApPose>& poses, const dsp::ArrayConfig& array,
    const channel::Room& room, int shards, index_t n, const Options& o) {
  serve::ShardedConfig cfg;
  cfg.shard = shard_config(poses, array, room, o.max_batch, o,
                           /*dispatchers=*/0);
  cfg.shards = shards;
  serve::ShardedService svc(cfg);
  std::vector<std::vector<std::uint64_t>> slots(static_cast<std::size_t>(n));
  for (index_t r = 0; r < n; ++r) {
    const io::ClientRound& round =
        rounds[static_cast<std::size_t>(r) % rounds.size()];
    auto* slot = &slots[static_cast<std::size_t>(r)];
    const serve::SubmitStatus st = svc.submit(
        make_request(round, static_cast<std::uint64_t>(r),
                     static_cast<serve::Tick>(r)),
        [slot](const serve::Response& resp) { *slot = response_bits(resp); });
    if (st != serve::SubmitStatus::kAccepted) {
      std::fprintf(stderr, "replay submit rejected: %s\n",
                   serve::submit_status_name(st));
      std::exit(1);
    }
    // Interleave processing with submission so the queue never exceeds
    // capacity and batch formation exercises partial batches.
    if ((r + 1) % o.max_batch == 0) (void)svc.pump();
  }
  svc.drain();
  return slots;
}

void emit_mode(eval::JsonWriter& w, const ModeResult& m) {
  w.begin_object();
  w.key("max_batch").value(static_cast<std::int64_t>(m.max_batch));
  if (m.shards > 0) w.key("shards").value(m.shards);
  w.key("wall_ms").value(m.wall_ms);
  w.key("sustained_rps").value(m.sustained_rps);
  w.key("p50_ms").value(m.p50_ms);
  w.key("p95_ms").value(m.p95_ms);
  w.key("p99_ms").value(m.p99_ms);
  w.key("mean_ms").value(m.mean_ms);
  w.key("accepted").value(static_cast<std::int64_t>(m.stats.accepted));
  w.key("rejected_queue_full")
      .value(static_cast<std::int64_t>(m.stats.rejected_queue_full));
  w.key("deadline_dropped")
      .value(static_cast<std::int64_t>(m.stats.deadline_dropped));
  w.key("completed_ok").value(static_cast<std::int64_t>(m.stats.completed_ok));
  w.key("completed_no_observations")
      .value(static_cast<std::int64_t>(m.stats.completed_no_observations));
  w.key("batches").value(static_cast<std::int64_t>(m.stats.batches));
  double size_sum = 0.0;
  w.key("batch_size_hist").begin_array();
  for (std::size_t k = 0; k < m.stats.batch_size_hist.size(); ++k) {
    w.value(static_cast<std::int64_t>(m.stats.batch_size_hist[k]));
    size_sum += static_cast<double>((k + 1) * m.stats.batch_size_hist[k]);
  }
  w.end_array();
  w.key("mean_batch_size")
      .value(m.stats.batches > 0
                 ? size_sum / static_cast<double>(m.stats.batches)
                 : 0.0);
  if (m.shards > 0) {
    w.key("shed_admission")
        .value(static_cast<std::int64_t>(m.shed_admission));
    w.key("steal_events").value(static_cast<std::int64_t>(m.steal_events));
    w.key("stolen_requests")
        .value(static_cast<std::int64_t>(m.stolen_requests));
    w.key("transferred_in")
        .value(static_cast<std::int64_t>(m.stats.transferred_in));
  }
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse_options(argc, argv);

  std::string trace_path = o.trace;
  if (trace_path.empty()) {
    if (!o.record_forced && std::ifstream(o.record).good()) {
      // Default path and the file (typically the committed repo-root
      // artifact) already exists: replay it instead of re-recording.
      std::printf("replaying existing trace %s (pass --record to re-record)\n",
                  o.record.c_str());
    } else {
      record_trace(o);
    }
    trace_path = o.record;
  }

  io::TraceReader reader(trace_path);
  const auto rounds = io::read_client_rounds(reader);
  if (rounds.empty()) {
    std::fprintf(stderr, "trace %s holds no records\n", trace_path.c_str());
    return 1;
  }
  const dsp::ArrayConfig array = reader.array_config();
  std::uint32_t num_aps = 0;
  for (const auto& r : rounds) {
    for (std::uint32_t id : r.ap_ids) num_aps = std::max(num_aps, id + 1);
  }
  const sim::Testbed tb = sim::make_paper_testbed();
  if (num_aps > tb.aps.size()) {
    std::fprintf(stderr, "trace names AP %u but the testbed has only %zu\n",
                 num_aps - 1, tb.aps.size());
    return 1;
  }
  const std::vector<channel::ApPose> poses(tb.aps.begin(),
                                           tb.aps.begin() + num_aps);

  const int pool_threads = effective_threads(o);
  std::printf("replaying %zu rounds (%u APs) x %lld requests on %d threads\n",
              rounds.size(), num_aps, static_cast<long long>(o.requests),
              pool_threads);
  const ModeResult batch1 = run_mode(rounds, poses, array, tb.room, 1, o);
  std::printf("batch1:  %7.1f req/s  p50 %.1f ms  p95 %.1f ms\n",
              batch1.sustained_rps, batch1.p50_ms, batch1.p95_ms);
  const ModeResult dynamic =
      run_mode(rounds, poses, array, tb.room, o.max_batch, o);
  std::printf("dynamic: %7.1f req/s  p50 %.1f ms  p95 %.1f ms  (batch<=%lld)\n",
              dynamic.sustained_rps, dynamic.p50_ms, dynamic.p95_ms,
              static_cast<long long>(o.max_batch));
  const double speedup =
      dynamic.sustained_rps / std::max(batch1.sustained_rps, 1e-9);
  std::printf("dynamic batching speedup: %.2fx\n", speedup);

  // Shard-count scaling sweep (dispatcher mode, 1 dispatcher per shard).
  std::vector<ModeResult> scaling;
  scaling.reserve(o.shard_sweep.size());
  for (const int k : o.shard_sweep) {
    scaling.push_back(run_shard_mode(rounds, poses, array, tb.room, k, o));
    const ModeResult& m = scaling.back();
    std::printf(
        "shards=%d: %7.1f req/s  p50 %.1f ms  p95 %.1f ms  "
        "(steals %llu, shed %llu)\n",
        k, m.sustained_rps, m.p50_ms, m.p95_ms,
        static_cast<unsigned long long>(m.stolen_requests),
        static_cast<unsigned long long>(m.shed_admission));
  }
  bool monotonic = true;
  for (std::size_t i = 1; i < scaling.size(); ++i) {
    // 10% tolerance: on a single-core host every shard count contends
    // for the same core and jitter dominates; genuine regressions are
    // much larger than 10%.
    if (scaling[i].sustained_rps < 0.9 * scaling[i - 1].sustained_rps) {
      monotonic = false;
    }
  }

  // Deterministic replay: pump/drain mode must be bit-identical across
  // shard counts (work stealing and routing may move requests between
  // shards, never change their results).
  const index_t replay_n = std::min(o.replay_requests, o.requests);
  const auto reference =
      replay_fingerprint(rounds, poses, array, tb.room, 1, replay_n, o);
  bool replay_identical = true;
  for (const int k : o.shard_sweep) {
    if (k == 1) continue;
    const auto fp =
        replay_fingerprint(rounds, poses, array, tb.room, k, replay_n, o);
    if (fp != reference) replay_identical = false;
  }
  std::printf("deterministic replay across shard counts: %s\n",
              replay_identical ? "bit-identical" : "MISMATCH");

  const int max_shards =
      *std::max_element(o.shard_sweep.begin(), o.shard_sweep.end());
  const bool written = bench::write_json_report(o.json, [&](eval::JsonWriter& w) {
    w.begin_object();
    bench::emit_machine_provenance(w, pool_threads, max_shards);
    w.key("requests").value(static_cast<std::int64_t>(o.requests));
    w.key("iterations").value(o.iterations);
    w.key("trace").begin_object();
    w.key("path").value(trace_path);
    w.key("records").value(static_cast<std::int64_t>(reader.records_read()));
    w.key("rounds").value(static_cast<std::int64_t>(rounds.size()));
    w.key("aps").value(static_cast<std::int64_t>(num_aps));
    w.key("packets_per_burst")
        .value(static_cast<std::int64_t>(rounds[0].bursts[0].size()));
    w.end_object();
    w.key("batch1");
    emit_mode(w, batch1);
    w.key("dynamic");
    emit_mode(w, dynamic);
    w.key("dynamic_speedup_vs_batch1").value(speedup);
    w.key("shard_scaling").begin_array();
    for (const ModeResult& m : scaling) emit_mode(w, m);
    w.end_array();
    w.key("shard_scaling_monotonic_10pct").value(monotonic);
    w.key("replay").begin_object();
    w.key("requests").value(static_cast<std::int64_t>(replay_n));
    w.key("shards_checked").begin_array();
    for (const int k : o.shard_sweep) w.value(k);
    w.end_array();
    w.key("replay_shards_identical").value(replay_identical);
    w.end_object();
    w.end_object();
  });
  if (!written) return 1;
  std::printf("wrote %s\n", o.json.c_str());
  return 0;
}
