// Figure 2: SpotFi (MUSIC) AoA spectra for a LoS path fixed at 150 deg
// under high (18 dB), medium (7 dB), low (2 dB), and very low (-3 dB)
// SNR — sharpness and accuracy degrade as SNR falls. Also prints the
// ROArray sparse spectrum at the same SNRs, previewing Section III.
#include <cstdio>
#include <iostream>
#include <random>

#include "channel/csi.hpp"
#include "channel/multipath.hpp"
#include "core/roarray.hpp"
#include "eval/report.hpp"
#include "music/spotfi.hpp"
#include "common.hpp"

namespace {

using namespace roarray;
using linalg::cxd;
using linalg::index_t;

/// The paper's Fig. 2 geometry: direct path at 150 deg plus reflections.
std::vector<channel::Path> figure2_channel() {
  channel::Path direct;
  direct.aoa_deg = 150.0;
  direct.toa_s = 45e-9;
  direct.gain = cxd{1.0, 0.0};
  channel::Path r1;
  r1.aoa_deg = 75.0;
  r1.toa_s = 190e-9;
  r1.gain = cxd{0.4, 0.2};
  channel::Path r2;
  r2.aoa_deg = 40.0;
  r2.toa_s = 330e-9;
  r2.gain = cxd{0.2, -0.15};
  return {direct, r1, r2};
}

double beamwidth_deg(const dsp::Spectrum1d& spec, double half_level = 0.5) {
  // Width of the region around the global peak above half_level.
  index_t peak = 0;
  for (index_t i = 0; i < spec.values.size(); ++i) {
    if (spec.values[i] > spec.values[peak]) peak = i;
  }
  index_t lo = peak;
  while (lo > 0 && spec.values[lo - 1] >= half_level) --lo;
  index_t hi = peak;
  while (hi + 1 < spec.values.size() && spec.values[hi + 1] >= half_level) ++hi;
  return spec.grid[hi] - spec.grid[lo];
}

}  // namespace

/// Everything one SNR point contributes to the printout; computed on
/// the pool, printed in SNR order afterwards.
struct SnrCase {
  double snr = 0.0;
  double music_aoa_deg = 0.0;
  double music_width_deg = 0.0;
  double ro_aoa_deg = 0.0;
  bool ro_valid = false;
  std::vector<double> music_xs, music_ys;
};

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  const dsp::ArrayConfig arr;
  const auto paths = figure2_channel();
  bench::BenchRuntime rt(opts);
  const runtime::EstimateContext ctx = rt.context();

  std::printf("Figure 2 reproduction: AoA spectra vs SNR (true LoS at 150 deg)\n");
  std::printf("paper shape: sharp+accurate at 18/7 dB, ~12 deg off at 2 dB, "
              "broken below 0 dB\n\n");

  const std::vector<double> snrs = {18.0, 7.0, 2.0, -3.0};
  const auto cases = rt.pool.map<SnrCase>(
      static_cast<index_t>(snrs.size()), [&](index_t i) {
        const double snr = snrs[static_cast<std::size_t>(i)];
        std::mt19937_64 rng(opts.seed);
        channel::BurstConfig bc;
        bc.num_packets = opts.packets;
        bc.snr_db = snr;
        bc.path_phase_jitter_rad = 0.3;
        const auto burst = channel::generate_burst(paths, arr, bc, rng);

        // SpotFi / MUSIC AoA spectrum (joint, marginalized over ToA).
        const music::SpotfiResult sf =
            music::spotfi_estimate(burst.csi, music::SpotfiConfig{}, arr, true);
        dsp::Spectrum1d music_spec = sf.first_packet_spectrum.aoa_marginal();
        music_spec.normalize();

        // ROArray sparse spectrum over the same burst.
        core::RoArrayConfig rcfg;
        rcfg.solver.max_iterations = 300;
        const core::RoArrayResult ro =
            core::roarray_estimate(burst.csi, rcfg, arr, ctx);

        SnrCase out;
        out.snr = snr;
        out.music_aoa_deg = sf.direct_aoa_deg;
        out.music_width_deg = beamwidth_deg(music_spec);
        out.ro_aoa_deg = ro.direct.aoa_deg;
        out.ro_valid = ro.valid;
        for (index_t k = 0; k < music_spec.values.size(); ++k) {
          out.music_xs.push_back(music_spec.grid[k]);
          out.music_ys.push_back(music_spec.values[k]);
        }
        return out;
      });

  for (const SnrCase& c : cases) {
    std::printf("== SNR %.0f dB ==\n", c.snr);
    std::printf("  MUSIC/SpotFi: direct-path est %.1f deg (err %.1f), "
                "half-power width %.1f deg\n",
                c.music_aoa_deg, dsp::angle_diff_deg(c.music_aoa_deg, 150.0),
                c.music_width_deg);
    std::printf("  ROArray:      est %.1f deg (err %.1f), direct-path pick %s\n",
                c.ro_aoa_deg, dsp::angle_diff_deg(c.ro_aoa_deg, 150.0),
                c.ro_valid ? "valid" : "invalid");
    std::printf("  MUSIC spectrum sketch (0..180 deg):\n");
    eval::print_spectrum_sketch(std::cout, c.music_xs, c.music_ys, 6);
    std::printf("\n");
  }
  return 0;
}
