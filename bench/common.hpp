// Shared scaffolding for the figure-reproduction benches: command-line
// options, the three-system evaluation loop, and result collection.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/roarray.hpp"
#include "eval/report.hpp"
#include "loc/localize.hpp"
#include "music/arraytrack.hpp"
#include "music/spotfi.hpp"
#include "runtime/context.hpp"
#include "runtime/operator_cache.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/scenario.hpp"
#include "sim/testbed.hpp"

namespace roarray::bench {

using linalg::index_t;

/// Options shared by the figure benches. Defaults are sized so each
/// bench finishes in a couple of minutes on one core; pass --locations
/// 100 (or more) for paper-scale runs.
struct BenchOptions {
  index_t locations = 15;   ///< client test locations per SNR band.
  index_t packets = 15;     ///< packets per measurement (paper: 15).
  std::uint64_t seed = 7;   ///< RNG seed (deterministic runs).
  /// Run the baselines in their strict historical configuration (SpotFi
  /// with fixed K = 5, no candidate gating) instead of the strengthened
  /// defaults this library ships.
  bool strict_baselines = false;
  /// Worker threads for the trial loops; 0 = auto (ROARRAY_THREADS env
  /// var, else hardware concurrency). Results are identical at any
  /// thread count: every location draws from its own seeded RNG stream
  /// and per-location results are merged in location order.
  int threads = 0;
  /// Route the ROArray solves through the coarse-to-fine factored
  /// dictionary (RoArrayConfig::coarse_fine). Same grids, pruned
  /// support: results agree with the full solve to grid resolution but
  /// are not bit-identical to it.
  bool coarse_fine = false;
};

/// Parses --locations N / --packets P / --seed S / --strict-baselines /
/// --threads T / --coarse-fine; exits on bad input.
[[nodiscard]] BenchOptions parse_options(int argc, char** argv);

/// Thread pool + steering-operator cache shared across a bench run.
/// Construct one per process and pass it to run_band / the per-location
/// loops so every ROArray solve reuses the same cached operator.
///
/// Concurrency contract (DESIGN.md §8): both members synchronize
/// internally (thread-safety-annotated mutexes); everything else a
/// bench shares across locations is slot-per-index writes merged on the
/// submitting thread in index order — keep it that way, mutex-free.
struct BenchRuntime {
  runtime::OperatorCache cache;
  runtime::ThreadPool pool;

  explicit BenchRuntime(const BenchOptions& opts)
      : pool(opts.threads > 0 ? opts.threads
                              : runtime::ThreadPool::default_thread_count()) {}

  [[nodiscard]] runtime::EstimateContext context() { return {&cache, &pool}; }
};

/// Deterministic per-trial RNG stream: splitmix64 of (seed, index).
/// Gives every location an independent stream so trials can run in any
/// order (or concurrently) without changing the drawn values.
[[nodiscard]] std::uint64_t trial_seed(std::uint64_t seed, std::uint64_t index);

/// Which estimator to run.
enum class System { kRoArray, kSpotfi, kArrayTrack };

[[nodiscard]] const char* system_name(System s);

/// Per-system error samples accumulated over locations.
struct SystemErrors {
  std::vector<double> localization_m;  ///< one per location.
  std::vector<double> aoa_deg;         ///< one per (location, AP).
};

/// Estimates the direct-path AoA with the given system. Returns false
/// if the estimator produced nothing usable. `strict` selects the
/// historical baseline configuration (see BenchOptions). `ctx` lets the
/// ROArray path reuse a cached steering operator; `coarse_fine` routes
/// it through the pruned factored-dictionary solve. A non-null
/// `toa_s_out` receives the system's direct-path ToA pick when it has
/// one (ROArray, SpotFi) and is left untouched otherwise — initialize
/// it to NaN to detect whether a ToA was produced.
[[nodiscard]] bool estimate_direct_aoa(System system,
                                       const sim::ApMeasurement& m,
                                       const dsp::ArrayConfig& array_cfg,
                                       double& aoa_deg, bool strict = false,
                                       const runtime::EstimateContext& ctx = {},
                                       bool coarse_fine = false,
                                       double* toa_s_out = nullptr);

/// Runs `systems` over every location at the given SNR band and collects
/// localization + AoA errors. Each location uses its own deterministic
/// RNG stream (trial_seed of the band seed and location index), and
/// locations fan out over rt's pool when one is given — the merged
/// output is identical at any thread count.
[[nodiscard]] std::vector<SystemErrors> run_band(
    const sim::Testbed& testbed, const std::vector<sim::Vec2>& clients,
    sim::SnrBand band, const std::vector<System>& systems,
    const BenchOptions& opts, BenchRuntime* rt = nullptr);

/// The three-band fractions used by every CDF table.
[[nodiscard]] std::vector<double> cdf_fractions();

/// Emits the `"machine"` provenance object shared by every bench JSON
/// artifact: the hardware thread count, the pool width the run actually
/// used (`pool_threads` — the effective value, after any max()/env
/// adjustment, not the requested one) together with a
/// `pool_oversubscribed` caveat flag (true when pool_threads >
/// hardware_threads, i.e. the latency/throughput numbers were taken
/// with more pool lanes than cores and parallel speedups are not
/// trustworthy), and the compute-backend dispatch decision (requested
/// vs selected kernel table, whether a SIMD TU was compiled in and
/// whether the CPU supports it, detected CPU features). `shards` > 0
/// additionally records the largest service shard count the run used
/// (serve benches). Keeping these next to the timings makes BENCH_*
/// trajectories comparable across machines. Call between key/value
/// pairs of an open object.
void emit_machine_provenance(eval::JsonWriter& w, int pool_threads,
                             int shards = 0);

/// Writes a JSON artifact to `path`: opens the file, hands a JsonWriter
/// to `body`, then verifies the stream flushed and the writer emitted a
/// complete document. Returns false with a stderr diagnostic on any
/// failure — callers must exit nonzero so CI smoke legs never mistake a
/// missing or half-written report for a result.
[[nodiscard]] bool write_json_report(
    const std::string& path,
    const std::function<void(eval::JsonWriter&)>& body);

}  // namespace roarray::bench
