// Figure 6: localization-error CDFs of ROArray vs SpotFi vs ArrayTrack
// at high (>=15 dB), medium (2..15 dB), and low (<=2 dB) SNR, 6 APs,
// 15 packets per system.
//
// Paper medians: high 0.63 / 0.64 / 2.3 m; low 0.91 / 2.61 / 3.52 m;
// 90th percentile at high SNR 2.66 / 2.51 / 5.66 m. The shape to match:
// ROArray ~ SpotFi >> ArrayTrack at high SNR, ROArray clearly best at
// low SNR.
#include <iostream>

#include "eval/cdf.hpp"
#include "eval/report.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace roarray;
  const auto opts = bench::parse_options(argc, argv);

  const sim::Testbed tb = sim::make_paper_testbed();
  std::mt19937_64 loc_rng(opts.seed);
  const auto clients =
      sim::sample_client_locations(opts.locations, tb.room, loc_rng);

  const std::vector<bench::System> systems = {bench::System::kRoArray,
                                              bench::System::kSpotfi,
                                              bench::System::kArrayTrack};
  bench::BenchRuntime rt(opts);

  std::printf("Figure 6 reproduction: localization error CDFs "
              "(%lld locations x 3 SNR bands, %lld packets, 6 APs, "
              "%d threads)\n\n",
              static_cast<long long>(opts.locations),
              static_cast<long long>(opts.packets), rt.pool.threads());

  const sim::SnrBand bands[] = {sim::SnrBand::kHigh, sim::SnrBand::kMedium,
                                sim::SnrBand::kLow};
  for (sim::SnrBand band : bands) {
    const auto errs = bench::run_band(tb, clients, band, systems, opts, &rt);
    std::vector<eval::NamedCdf> curves;
    for (std::size_t s = 0; s < systems.size(); ++s) {
      curves.push_back(
          {bench::system_name(systems[s]), eval::Cdf(errs[s].localization_m)});
    }
    eval::print_cdf_table(std::cout,
                          std::string("Fig 6, ") + sim::snr_band_name(band),
                          curves, bench::cdf_fractions(), "m");
    eval::print_cdf_summary(std::cout, curves, "m");
    std::printf("\n");
  }
  std::printf("paper reference medians: high 0.63/0.64/2.3 m, "
              "medium (between), low 0.91/2.61/3.52 m "
              "(ROArray/SpotFi/ArrayTrack)\n");
  return 0;
}
