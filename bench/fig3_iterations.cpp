// Figure 3: progress of the sparse-recovery solve across iterations —
// the AoA spectrum sharpens from diffuse to two crisp peaks, one at the
// ground-truth angle. The paper shows snapshots at 3/6/9/14 iterations
// of its SOC solver; we trace FISTA iterations of the same objective.
#include <cstdio>
#include <iostream>
#include <random>

#include "channel/csi.hpp"
#include "core/roarray.hpp"
#include "eval/report.hpp"
#include "common.hpp"

namespace {

using namespace roarray;
using linalg::cxd;
using linalg::index_t;

std::vector<channel::Path> two_path_channel() {
  channel::Path direct;
  direct.aoa_deg = 120.0;
  direct.toa_s = 50e-9;
  direct.gain = cxd{1.0, 0.0};
  channel::Path refl;
  refl.aoa_deg = 58.0;
  refl.toa_s = 240e-9;
  refl.gain = cxd{0.55, 0.3};
  return {direct, refl};
}

/// Number of grid cells holding non-negligible energy — the sharpness
/// proxy: it shrinks as the iterations enforce sparsity.
index_t active_cells(const dsp::Spectrum1d& spec, double level = 0.05) {
  index_t n = 0;
  for (index_t i = 0; i < spec.values.size(); ++i) {
    if (spec.values[i] >= level) ++n;
  }
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  const dsp::ArrayConfig arr;
  const auto paths = two_path_channel();

  std::mt19937_64 rng(opts.seed);
  channel::BurstConfig bc;
  bc.num_packets = 1;
  bc.snr_db = 18.0;
  const auto burst = channel::generate_burst(paths, arr, bc, rng);

  core::RoArrayConfig cfg;
  cfg.solver.max_iterations = 64;
  cfg.solver.tolerance = 0.0;  // run to the end so snapshots exist

  std::printf("Figure 3 reproduction: AoA spectrum vs solver iteration\n");
  std::printf("true AoAs: direct 120 deg, reflection 58 deg\n\n");

  const std::vector<int> snapshots = {3, 6, 9, 14, 30, 64};
  std::vector<std::pair<int, dsp::Spectrum1d>> traces;
  const core::RoArrayResult final_result = core::roarray_estimate(
      burst.csi, cfg, arr, [&](int it, const linalg::CVec& x) {
        for (int snap : snapshots) {
          if (it == snap) {
            const auto spec =
                core::coefficients_to_spectrum(x, cfg.aoa_grid, cfg.toa_grid);
            traces.emplace_back(it, spec.aoa_marginal());
          }
        }
      });

  for (auto& [it, spec] : traces) {
    spec.normalize();
    const auto peaks = spec.find_peaks(2, 0.1, 3);
    std::printf("== iteration %d ==\n", it);
    std::printf("  active cells (>=5%% of peak): %lld of %lld\n",
                static_cast<long long>(active_cells(spec)),
                static_cast<long long>(spec.values.size()));
    std::printf("  top peaks:");
    for (const auto& p : peaks) std::printf(" %.0f deg (%.2f)", p.aoa_deg, p.value);
    std::printf("\n");
    std::vector<double> xs, ys;
    for (index_t i = 0; i < spec.values.size(); ++i) {
      xs.push_back(spec.grid[i]);
      ys.push_back(spec.values[i]);
    }
    eval::print_spectrum_sketch(std::cout, xs, ys, 5);
    std::printf("\n");
  }

  std::printf("final estimate after %d iterations: direct %.0f deg "
              "(truth 120), %zu paths\n",
              final_result.solver_iterations, final_result.direct.aoa_deg,
              final_result.paths.size());
  std::printf("paper shape: spectrum sharpens monotonically with iterations, "
              "ending at two crisp peaks, one on the ground truth.\n");
  return 0;
}
