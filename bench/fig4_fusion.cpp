// Figure 4: joint ToA&AoA spectra from two individual packets of the
// same static channel carry different packet-detection delays ((a), (b)
// show the peak at different ToAs); after delay estimation and
// 30-packet fusion the spectrum is sharper and stable ((c)).
//
// On top of the paper repro, the bench runs the robust-vs-naive fusion
// sweep: the same per-AP estimates are fused twice — once through the
// robust NLoS-aware layer (src/fusion/, the localize default) and once
// through the naive weighted grid argmin — across adversarial NLoS
// scenarios (clean, 1 and 2 blocked APs, wrong-peak boosts, ToA bias).
// --json writes BENCH_fusion.json with the per-scenario medians/CDFs,
// machine provenance, and the robust_no_worse_than_naive_clean flag the
// CI bench smoke grep-gates.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "channel/csi.hpp"
#include "core/roarray.hpp"
#include "eval/cdf.hpp"
#include "eval/report.hpp"
#include "common.hpp"

namespace {

using namespace roarray;
using linalg::cxd;
using linalg::index_t;

std::vector<channel::Path> fig4_channel() {
  channel::Path direct;
  direct.aoa_deg = 100.0;
  direct.toa_s = 60e-9;
  direct.gain = cxd{1.0, 0.0};
  channel::Path refl;
  refl.aoa_deg = 45.0;
  refl.toa_s = 260e-9;
  refl.gain = cxd{0.5, 0.25};
  return {direct, refl};
}

void print_peaks(const char* name, const core::RoArrayResult& r) {
  std::printf("%s:\n", name);
  for (const auto& p : r.paths) {
    std::printf("  path at aoa %.0f deg, toa %.0f ns, power %.2f\n",
                p.aoa_deg, p.toa_s * 1e9, p.power);
  }
  std::printf("  direct pick: %.0f deg @ %.0f ns\n", r.direct.aoa_deg,
              r.direct.toa_s * 1e9);
}

/// Spectrum concentration: peak energy fraction (sharper = higher).
double concentration(const core::RoArrayResult& r) {
  double total = 0.0;
  for (index_t j = 0; j < r.spectrum.values.cols(); ++j) {
    for (index_t i = 0; i < r.spectrum.values.rows(); ++i) {
      total += r.spectrum.values(i, j);
    }
  }
  return total > 0.0 ? 1.0 / total : 0.0;
}

void paper_repro(const bench::BenchOptions& opts) {
  const dsp::ArrayConfig arr;
  const auto paths = fig4_channel();

  std::mt19937_64 rng(opts.seed);
  channel::BurstConfig bc;
  bc.num_packets = 30;
  bc.snr_db = 10.0;
  bc.max_detection_delay_s = 200e-9;
  bc.path_phase_jitter_rad = 0.3;
  const auto burst = channel::generate_burst(paths, arr, bc, rng);

  std::printf("Figure 4 reproduction: per-packet detection delays vs fusion\n");
  std::printf("true channel: direct (100 deg, 60 ns), reflection (45 deg, 260 ns)\n");
  std::printf("injected per-packet detection delay: uniform [0, 200] ns\n\n");

  // (a), (b): single packets without sanitization — absolute ToA includes
  // each packet's own random delay.
  core::RoArrayConfig raw;
  raw.sanitize = false;
  raw.solver.max_iterations = 300;
  const std::vector<linalg::CMat> pkt_a = {burst.csi[0]};
  const std::vector<linalg::CMat> pkt_b = {burst.csi[1]};
  const auto ra = core::roarray_estimate(pkt_a, raw, arr);
  const auto rb = core::roarray_estimate(pkt_b, raw, arr);
  std::printf("injected delay packet A: %.0f ns, packet B: %.0f ns\n\n",
              burst.detection_delays[0] * 1e9, burst.detection_delays[1] * 1e9);
  print_peaks("(a) packet A, raw", ra);
  print_peaks("(b) packet B, raw", rb);
  std::printf("  -> same channel, different apparent ToAs (delays differ by %.0f ns)\n\n",
              std::abs(burst.detection_delays[0] - burst.detection_delays[1]) * 1e9);

  // (c): sanitize + l1-SVD fusion over all 30 packets.
  core::RoArrayConfig fused;
  fused.solver.max_iterations = 300;
  const auto rc = core::roarray_estimate(burst.csi, fused, arr);
  print_peaks("(c) 30 packets, delay-corrected + fused", rc);
  std::printf("\nconcentration (peak energy fraction): packet A %.3f, "
              "packet B %.3f, fused %.3f\n",
              concentration(ra), concentration(rb), concentration(rc));
  std::printf("paper shape: (c) is sharper/more accurate; direct AoA error "
              "fused = %.1f deg vs raw %.1f / %.1f deg\n\n",
              dsp::angle_diff_deg(rc.direct.aoa_deg, 100.0),
              dsp::angle_diff_deg(ra.direct.aoa_deg, 100.0),
              dsp::angle_diff_deg(rb.direct.aoa_deg, 100.0));
}

/// One adversarial sweep entry: a name plus the corruption it injects on
/// top of the high-SNR band scenario.
struct AdvScenario {
  const char* name;
  sim::AdversarialConfig adv;
};

std::vector<AdvScenario> sweep_scenarios() {
  std::vector<AdvScenario> out;
  out.push_back({"clean", {}});
  {
    sim::AdversarialConfig a;
    a.num_blocked_aps = 1;
    out.push_back({"blocked_1", a});
  }
  {
    sim::AdversarialConfig a;
    a.num_blocked_aps = 2;
    out.push_back({"blocked_2", a});
  }
  {
    sim::AdversarialConfig a;
    a.wrong_peak_probability = 0.35;
    out.push_back({"wrong_peak", a});
  }
  {
    sim::AdversarialConfig a;
    a.num_toa_bias_aps = 2;
    out.push_back({"toa_bias", a});
  }
  return out;
}

/// Paired robust/naive error samples plus fusion telemetry for one
/// scenario over all locations.
struct SweepResult {
  std::vector<double> robust_m;
  std::vector<double> naive_m;
  index_t ransac_rounds = 0;
  index_t fusion_rounds = 0;
  index_t inliers = 0;
  index_t fused_aps = 0;
};

SweepResult run_sweep(const sim::Testbed& tb,
                      const std::vector<sim::Vec2>& clients,
                      std::size_t scenario_index, const AdvScenario& sc,
                      const bench::BenchOptions& opts,
                      bench::BenchRuntime& rt) {
  // High-SNR band with the random LoS blockage switched off: the
  // injected adversarial corruption is the only NLoS effect, so the
  // sweep isolates how each fusion rule handles a *known* number of
  // lying APs instead of folding in the band's background blockage.
  sim::ScenarioConfig scfg = sim::scenario_for_band(sim::SnrBand::kHigh);
  scfg.num_packets = opts.packets;
  scfg.los_block_probability = 0.0;
  scfg.adversarial = sc.adv;

  loc::LocalizeConfig robust_cfg;
  robust_cfg.room = tb.room;
  loc::LocalizeConfig naive_cfg = robust_cfg;
  naive_cfg.robust = false;

  const std::uint64_t sweep_seed =
      opts.seed ^ (static_cast<std::uint64_t>(scenario_index + 1) << 32);
  const runtime::EstimateContext ctx = rt.context();

  // Slot-per-location writes merged in location order below (the bench
  // concurrency contract from BenchRuntime): identical at any thread
  // count.
  struct Slot {
    double robust_m = std::numeric_limits<double>::quiet_NaN();
    double naive_m = std::numeric_limits<double>::quiet_NaN();
    bool used_fusion = false;
    bool used_ransac = false;
    index_t inliers = 0;
    index_t fused_aps = 0;
  };
  std::vector<Slot> slots(clients.size());
  auto run_location = [&](index_t li) {
    const auto l = static_cast<std::size_t>(li);
    std::mt19937_64 rng(
        bench::trial_seed(sweep_seed, static_cast<std::uint64_t>(li)));
    const auto ms = sim::generate_measurements(tb, clients[l], scfg, rng);
    // Estimate once per AP; fuse the same observations twice.
    std::vector<loc::ApObservation> obs;
    for (const sim::ApMeasurement& m : ms) {
      double aoa = 0.0;
      double toa = std::numeric_limits<double>::quiet_NaN();
      if (!estimate_direct_aoa(bench::System::kRoArray, m, scfg.array, aoa,
                               false, ctx, opts.coarse_fine, &toa)) {
        continue;
      }
      obs.push_back({m.pose, aoa, m.rssi_weight,
                     std::isfinite(toa) ? toa : 0.0, std::isfinite(toa)});
    }
    const loc::LocalizeResult robust = loc::localize(obs, robust_cfg, ctx.pool);
    const loc::LocalizeResult naive = loc::localize(obs, naive_cfg, ctx.pool);
    if (std::getenv("FUSION_SWEEP_DEBUG") != nullptr && robust.valid &&
        naive.valid) {
      std::string flags;
      for (const auto& m : ms) {
        flags += m.adversarial_blocked ? 'B'
                 : m.adversarial_wrong_peak ? 'W'
                 : m.adversarial_toa_bias ? 'T'
                                          : '.';
      }
      // Weighted angular objective (the naive grid cost) at both fixes:
      // tells whether a robust miss is a worse optimum or a better
      // optimum of a misleading objective.
      auto grid_cost = [&](const channel::Vec2& x) {
        double j = 0.0;
        for (const auto& o : obs) {
          const double dphi = o.pose.aoa_of_point(x) - o.aoa_deg;
          j += o.weight * dphi * dphi;
        }
        return j;
      };
      std::printf(
          "  loc %2lld [%s] robust %.2f naive %.2f J(r) %.3f J(n) %.3f "
          "inliers %d/%zu ransac %d residuals:",
          static_cast<long long>(li), flags.c_str(),
          channel::distance(robust.position, clients[l]),
          channel::distance(naive.position, clients[l]),
          grid_cost(robust.position), grid_cost(naive.position),
          robust.fusion.inliers,
          robust.fusion.per_ap.size(), robust.fusion.used_ransac ? 1 : 0);
      for (const auto& ap : robust.fusion.per_ap) {
        std::printf(" %.1f%s", ap.residual_deg, ap.inlier ? "" : "*");
      }
      std::printf("\n");
    }
    Slot& s = slots[l];
    if (robust.valid) {
      s.robust_m = channel::distance(robust.position, clients[l]);
      s.used_fusion = robust.used_fusion;
      s.used_ransac = robust.fusion.used_ransac;
      s.inliers = static_cast<index_t>(robust.fusion.inliers);
      s.fused_aps = static_cast<index_t>(robust.fusion.per_ap.size());
    }
    if (naive.valid) {
      s.naive_m = channel::distance(naive.position, clients[l]);
    }
  };

  const auto n = static_cast<index_t>(clients.size());
  rt.pool.parallel_for(n, run_location);

  SweepResult out;
  for (const Slot& s : slots) {
    if (std::isfinite(s.robust_m)) out.robust_m.push_back(s.robust_m);
    if (std::isfinite(s.naive_m)) out.naive_m.push_back(s.naive_m);
    if (s.used_fusion) {
      ++out.fusion_rounds;
      if (s.used_ransac) ++out.ransac_rounds;
      out.inliers += s.inliers;
      out.fused_aps += s.fused_aps;
    }
  }
  return out;
}

void emit_scenario_json(eval::JsonWriter& w, const AdvScenario& sc,
                        const SweepResult& r,
                        const std::vector<double>& fractions) {
  const eval::Cdf robust(r.robust_m);
  const eval::Cdf naive(r.naive_m);
  w.begin_object();
  w.key("scenario").value(sc.name);
  w.key("rounds").value(static_cast<std::int64_t>(r.robust_m.size()));
  auto curve = [&](const char* prefix, const eval::Cdf& c) {
    const std::string p(prefix);
    if (c.empty()) {
      w.key((p + "_median_m").c_str()).null();
      w.key((p + "_mean_m").c_str()).null();
      w.key((p + "_p90_m").c_str()).null();
      w.key((p + "_cdf_m").c_str()).begin_array().end_array();
      return;
    }
    w.key((p + "_median_m").c_str()).value(c.median());
    w.key((p + "_mean_m").c_str()).value(c.mean());
    w.key((p + "_p90_m").c_str()).value(c.percentile(0.9));
    w.key((p + "_cdf_m").c_str()).begin_array();
    for (double f : fractions) w.value(c.percentile(f));
    w.end_array();
  };
  curve("robust", robust);
  curve("naive", naive);
  w.key("ransac_fraction")
      .value(r.fusion_rounds > 0
                 ? static_cast<double>(r.ransac_rounds) /
                       static_cast<double>(r.fusion_rounds)
                 : 0.0);
  w.key("mean_inlier_fraction")
      .value(r.fused_aps > 0 ? static_cast<double>(r.inliers) /
                                   static_cast<double>(r.fused_aps)
                             : 0.0);
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  // --json [path] additionally writes the machine-readable sweep report
  // (BENCH_fusion.json); remaining flags go to the shared parser.
  const char* json_path = nullptr;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = (i + 1 < argc && argv[i + 1][0] != '-') ? argv[++i]
                                                          : "BENCH_fusion.json";
    } else {
      rest.push_back(argv[i]);
    }
  }
  auto opts =
      bench::parse_options(static_cast<int>(rest.size()), rest.data());

  paper_repro(opts);

  // 5 of the testbed's 6 APs: the sweep's headline case is "1 of 5 APs
  // lying", matching the fusion suite's breakdown tests.
  sim::Testbed tb = sim::make_paper_testbed();
  tb.aps.resize(5);
  std::mt19937_64 loc_rng(opts.seed);
  const auto clients =
      sim::sample_client_locations(opts.locations, tb.room, loc_rng);
  bench::BenchRuntime rt(opts);

  std::printf("Robust-vs-naive fusion sweep: %lld locations, %lld packets, "
              "5 APs, %d threads\n"
              "(same per-AP estimates; fused via src/fusion/ IRLS+RANSAC vs "
              "the naive weighted grid argmin)\n\n",
              static_cast<long long>(opts.locations),
              static_cast<long long>(opts.packets), rt.pool.threads());

  const auto scenarios = sweep_scenarios();
  std::vector<SweepResult> results;
  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    results.push_back(run_sweep(tb, clients, si, scenarios[si], opts, rt));
    const SweepResult& r = results.back();
    std::vector<eval::NamedCdf> curves = {
        {"robust", eval::Cdf(r.robust_m)},
        {"naive", eval::Cdf(r.naive_m)},
    };
    eval::print_cdf_table(std::cout,
                          std::string("fusion sweep, ") + scenarios[si].name,
                          curves, bench::cdf_fractions(), "m");
    eval::print_cdf_summary(std::cout, curves, "m");
    std::printf("  ransac engaged in %lld/%lld fused rounds\n\n",
                static_cast<long long>(r.ransac_rounds),
                static_cast<long long>(r.fusion_rounds));
  }

  // Gates. Clean: robust must not lose to naive beyond noise (the
  // bit-compat contract makes IRLS == weighted LS on all-inlier rounds;
  // the slack absorbs the grid argmin's 10 cm quantization). Blocked-1:
  // the headline robustness claim — median error at least halved.
  const double robust_clean = eval::Cdf(results[0].robust_m).median();
  const double naive_clean = eval::Cdf(results[0].naive_m).median();
  const bool clean_ok = robust_clean <= naive_clean * 1.1 + 0.05;
  const double robust_b1 = eval::Cdf(results[1].robust_m).median();
  const double naive_b1 = eval::Cdf(results[1].naive_m).median();
  const bool blocked_halved = robust_b1 <= 0.5 * naive_b1;
  std::printf("clean medians: robust %.3f m vs naive %.3f m -> "
              "robust_no_worse_than_naive_clean=%s\n",
              robust_clean, naive_clean, clean_ok ? "true" : "false");
  std::printf("blocked_1 medians: robust %.3f m vs naive %.3f m (ratio %.2f) "
              "-> robust_halves_naive_blocked_1=%s\n",
              robust_b1, naive_b1,
              naive_b1 > 0.0 ? robust_b1 / naive_b1 : 0.0,
              blocked_halved ? "true" : "false");

  if (json_path != nullptr) {
    const bool written = bench::write_json_report(json_path, [&](eval::JsonWriter& w) {
      w.begin_object();
      w.key("bench").value("fig4_fusion");
      w.key("locations").value(static_cast<std::int64_t>(opts.locations));
      w.key("packets").value(static_cast<std::int64_t>(opts.packets));
      w.key("seed").value(static_cast<std::int64_t>(opts.seed));
      bench::emit_machine_provenance(w, rt.pool.threads());
      w.key("scenarios").begin_array();
      for (std::size_t si = 0; si < scenarios.size(); ++si) {
        emit_scenario_json(w, scenarios[si], results[si],
                           bench::cdf_fractions());
      }
      w.end_array();
      w.key("robust_median_clean_m").value(robust_clean);
      w.key("naive_median_clean_m").value(naive_clean);
      w.key("robust_median_blocked_1_m").value(robust_b1);
      w.key("naive_median_blocked_1_m").value(naive_b1);
      w.key("robust_blocked_1_median_ratio")
          .value(naive_b1 > 0.0 ? robust_b1 / naive_b1 : 0.0);
      w.key("robust_no_worse_than_naive_clean").value(clean_ok);
      w.key("robust_halves_naive_blocked_1").value(blocked_halved);
      w.end_object();
    });
    if (!written) return 1;
    std::printf("wrote %s\n", json_path);
  }
  return clean_ok ? 0 : 1;
}
