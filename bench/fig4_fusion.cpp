// Figure 4: joint ToA&AoA spectra from two individual packets of the
// same static channel carry different packet-detection delays ((a), (b)
// show the peak at different ToAs); after delay estimation and
// 30-packet fusion the spectrum is sharper and stable ((c)).
#include <cstdio>
#include <random>

#include "channel/csi.hpp"
#include "core/roarray.hpp"
#include "common.hpp"

namespace {

using namespace roarray;
using linalg::cxd;
using linalg::index_t;

std::vector<channel::Path> fig4_channel() {
  channel::Path direct;
  direct.aoa_deg = 100.0;
  direct.toa_s = 60e-9;
  direct.gain = cxd{1.0, 0.0};
  channel::Path refl;
  refl.aoa_deg = 45.0;
  refl.toa_s = 260e-9;
  refl.gain = cxd{0.5, 0.25};
  return {direct, refl};
}

void print_peaks(const char* name, const core::RoArrayResult& r) {
  std::printf("%s:\n", name);
  for (const auto& p : r.paths) {
    std::printf("  path at aoa %.0f deg, toa %.0f ns, power %.2f\n",
                p.aoa_deg, p.toa_s * 1e9, p.power);
  }
  std::printf("  direct pick: %.0f deg @ %.0f ns\n", r.direct.aoa_deg,
              r.direct.toa_s * 1e9);
}

/// Spectrum concentration: peak energy fraction (sharper = higher).
double concentration(const core::RoArrayResult& r) {
  double total = 0.0;
  for (index_t j = 0; j < r.spectrum.values.cols(); ++j) {
    for (index_t i = 0; i < r.spectrum.values.rows(); ++i) {
      total += r.spectrum.values(i, j);
    }
  }
  return total > 0.0 ? 1.0 / total : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  auto opts = bench::parse_options(argc, argv);
  const dsp::ArrayConfig arr;
  const auto paths = fig4_channel();

  std::mt19937_64 rng(opts.seed);
  channel::BurstConfig bc;
  bc.num_packets = 30;
  bc.snr_db = 10.0;
  bc.max_detection_delay_s = 200e-9;
  bc.path_phase_jitter_rad = 0.3;
  const auto burst = channel::generate_burst(paths, arr, bc, rng);

  std::printf("Figure 4 reproduction: per-packet detection delays vs fusion\n");
  std::printf("true channel: direct (100 deg, 60 ns), reflection (45 deg, 260 ns)\n");
  std::printf("injected per-packet detection delay: uniform [0, 200] ns\n\n");

  // (a), (b): single packets without sanitization — absolute ToA includes
  // each packet's own random delay.
  core::RoArrayConfig raw;
  raw.sanitize = false;
  raw.solver.max_iterations = 300;
  const std::vector<linalg::CMat> pkt_a = {burst.csi[0]};
  const std::vector<linalg::CMat> pkt_b = {burst.csi[1]};
  const auto ra = core::roarray_estimate(pkt_a, raw, arr);
  const auto rb = core::roarray_estimate(pkt_b, raw, arr);
  std::printf("injected delay packet A: %.0f ns, packet B: %.0f ns\n\n",
              burst.detection_delays[0] * 1e9, burst.detection_delays[1] * 1e9);
  print_peaks("(a) packet A, raw", ra);
  print_peaks("(b) packet B, raw", rb);
  std::printf("  -> same channel, different apparent ToAs (delays differ by %.0f ns)\n\n",
              std::abs(burst.detection_delays[0] - burst.detection_delays[1]) * 1e9);

  // (c): sanitize + l1-SVD fusion over all 30 packets.
  core::RoArrayConfig fused;
  fused.solver.max_iterations = 300;
  const auto rc = core::roarray_estimate(burst.csi, fused, arr);
  print_peaks("(c) 30 packets, delay-corrected + fused", rc);
  std::printf("\nconcentration (peak energy fraction): packet A %.3f, "
              "packet B %.3f, fused %.3f\n",
              concentration(ra), concentration(rb), concentration(rc));
  std::printf("paper shape: (c) is sharper/more accurate; direct AoA error "
              "fused = %.1f deg vs raw %.1f / %.1f deg\n",
              dsp::angle_diff_deg(rc.direct.aoa_deg, 100.0),
              dsp::angle_diff_deg(ra.direct.aoa_deg, 100.0),
              dsp::angle_diff_deg(rb.direct.aoa_deg, 100.0));
  return 0;
}
