#include "common.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <random>

#include "linalg/backend/backend.hpp"
#include "runtime/seed.hpp"

namespace roarray::bench {

BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--locations") == 0) {
      opts.locations = std::atoll(need_value("--locations"));
    } else if (std::strcmp(argv[i], "--packets") == 0) {
      opts.packets = std::atoll(need_value("--packets"));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      opts.seed = static_cast<std::uint64_t>(std::atoll(need_value("--seed")));
    } else if (std::strcmp(argv[i], "--strict-baselines") == 0) {
      opts.strict_baselines = true;
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      opts.threads = std::atoi(need_value("--threads"));
    } else if (std::strcmp(argv[i], "--coarse-fine") == 0) {
      opts.coarse_fine = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("options: --locations N --packets P --seed S "
                  "--strict-baselines --threads T --coarse-fine\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      std::exit(2);
    }
  }
  if (opts.locations < 1 || opts.packets < 1) {
    std::fprintf(stderr, "locations and packets must be >= 1\n");
    std::exit(2);
  }
  if (opts.threads < 0) {
    std::fprintf(stderr, "threads must be >= 0\n");
    std::exit(2);
  }
  return opts;
}

std::uint64_t trial_seed(std::uint64_t seed, std::uint64_t index) {
  return runtime::derive_seed(seed, index);
}

const char* system_name(System s) {
  switch (s) {
    case System::kRoArray: return "ROArray";
    case System::kSpotfi: return "SpotFi";
    case System::kArrayTrack: return "ArrayTrack";
  }
  return "?";
}

bool estimate_direct_aoa(System system, const sim::ApMeasurement& m,
                         const dsp::ArrayConfig& array_cfg, double& aoa_deg,
                         bool strict, const runtime::EstimateContext& ctx,
                         bool coarse_fine, double* toa_s_out) {
  switch (system) {
    case System::kRoArray: {
      core::RoArrayConfig cfg;
      cfg.solver.max_iterations = 300;
      cfg.coarse_fine.enabled = coarse_fine;
      const core::RoArrayResult r =
          core::roarray_estimate(m.burst.csi, cfg, array_cfg, ctx);
      if (!r.valid) return false;
      aoa_deg = r.direct.aoa_deg;
      if (toa_s_out != nullptr) *toa_s_out = r.direct.toa_s;
      return true;
    }
    case System::kSpotfi: {
      music::SpotfiConfig cfg;
      if (strict) {
        cfg.num_paths = 5;           // footnote 8: K hardwired to 5
        cfg.adaptive_order = false;
        cfg.min_cluster_weight_ratio = 0.0;
        cfg.edge_exclusion_deg = 0.0;
      }
      const music::SpotfiResult r =
          music::spotfi_estimate(m.burst.csi, cfg, array_cfg);
      if (!r.valid) return false;
      aoa_deg = r.direct_aoa_deg;
      if (toa_s_out != nullptr) *toa_s_out = r.direct_toa_s;
      return true;
    }
    case System::kArrayTrack: {
      const music::ArrayTrackResult r = music::arraytrack_estimate(
          m.burst.csi, music::ArrayTrackConfig{}, array_cfg);
      if (!r.valid) return false;
      aoa_deg = r.direct_aoa_deg;
      return true;
    }
  }
  return false;
}

std::vector<SystemErrors> run_band(const sim::Testbed& testbed,
                                   const std::vector<sim::Vec2>& clients,
                                   sim::SnrBand band,
                                   const std::vector<System>& systems,
                                   const BenchOptions& opts, BenchRuntime* rt) {
  const std::uint64_t band_seed =
      opts.seed ^ (static_cast<std::uint64_t>(band) << 32);

  loc::LocalizeConfig lcfg;
  lcfg.room = testbed.room;
  lcfg.grid_step_m = 0.1;

  sim::ScenarioConfig scfg = sim::scenario_for_band(band);
  scfg.num_packets = opts.packets;

  const runtime::EstimateContext ctx =
      rt != nullptr ? rt->context() : runtime::EstimateContext{};

  // One slot per location; slots are written independently and merged
  // in location order below, so the output does not depend on how the
  // locations were scheduled.
  std::vector<std::vector<SystemErrors>> per_loc(
      clients.size(), std::vector<SystemErrors>(systems.size()));
  auto run_location = [&](index_t li) {
    const auto l = static_cast<std::size_t>(li);
    std::mt19937_64 rng(trial_seed(band_seed, static_cast<std::uint64_t>(li)));
    const auto ms = sim::generate_measurements(testbed, clients[l], scfg, rng);
    for (std::size_t s = 0; s < systems.size(); ++s) {
      std::vector<loc::ApObservation> obs;
      for (const sim::ApMeasurement& m : ms) {
        double aoa = 0.0;
        double toa = std::numeric_limits<double>::quiet_NaN();
        if (!estimate_direct_aoa(systems[s], m, scfg.array, aoa,
                                 opts.strict_baselines, ctx,
                                 opts.coarse_fine, &toa)) {
          continue;
        }
        per_loc[l][s].aoa_deg.push_back(
            dsp::angle_diff_deg(aoa, m.true_direct_aoa_deg));
        obs.push_back({m.pose, aoa, m.rssi_weight, std::isfinite(toa) ? toa : 0.0,
                       std::isfinite(toa)});
      }
      const loc::LocalizeResult fix = loc::localize(obs, lcfg, ctx.pool);
      if (fix.valid) {
        per_loc[l][s].localization_m.push_back(
            channel::distance(fix.position, clients[l]));
      }
    }
  };

  const auto n = static_cast<index_t>(clients.size());
  if (ctx.pool != nullptr) {
    ctx.pool->parallel_for(n, run_location);
  } else {
    for (index_t li = 0; li < n; ++li) run_location(li);
  }

  std::vector<SystemErrors> out(systems.size());
  for (std::size_t l = 0; l < clients.size(); ++l) {
    for (std::size_t s = 0; s < systems.size(); ++s) {
      auto& dst = out[s];
      const auto& src = per_loc[l][s];
      dst.aoa_deg.insert(dst.aoa_deg.end(), src.aoa_deg.begin(),
                         src.aoa_deg.end());
      dst.localization_m.insert(dst.localization_m.end(),
                                src.localization_m.begin(),
                                src.localization_m.end());
    }
  }
  return out;
}

std::vector<double> cdf_fractions() {
  return {0.1, 0.25, 0.5, 0.75, 0.9, 1.0};
}

void emit_machine_provenance(eval::JsonWriter& w, int pool_threads,
                             int shards) {
  const auto d = linalg::backend::dispatch_info();
  w.key("machine").begin_object();
  w.key("hardware_threads")
      .value(runtime::ThreadPool::default_thread_count());
  w.key("pool_threads").value(pool_threads);
  w.key("pool_oversubscribed")
      .value(pool_threads > runtime::ThreadPool::default_thread_count());
  if (shards > 0) w.key("shards").value(shards);
  w.key("backend_requested").value(d.requested);
  w.key("backend_selected").value(d.selected->name);
  w.key("simd_compiled").value(d.simd_compiled);
  w.key("simd_supported").value(d.simd_supported);
  w.key("cpu_features").value(linalg::backend::cpu_features());
  w.end_object();
}

bool write_json_report(const std::string& path,
                       const std::function<void(eval::JsonWriter&)>& body) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  eval::JsonWriter w(f);
  body(w);
  f.flush();
  if (!f || !w.complete()) {
    std::fprintf(stderr, "writing %s failed\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace roarray::bench
