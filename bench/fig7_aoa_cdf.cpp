// Figure 7: direct-path AoA estimation-error CDFs for the three systems
// at high / medium / low SNR (errors measured against the ground-truth
// direct-path AoA at every AP).
//
// Paper medians: high ~6.7 / 6.62 / 9.10 deg; medium 7.32 / 7.40 /
// 10.0 deg; low 7.9 / 12.3 / 15.2 deg (ROArray / SpotFi / ArrayTrack).
// Shape to match: ROArray ~ SpotFi at high/medium SNR, ROArray degrades
// least at low SNR; ArrayTrack always worst.
#include <iostream>

#include "eval/cdf.hpp"
#include "eval/report.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace roarray;
  const auto opts = bench::parse_options(argc, argv);

  const sim::Testbed tb = sim::make_paper_testbed();
  std::mt19937_64 loc_rng(opts.seed);
  const auto clients =
      sim::sample_client_locations(opts.locations, tb.room, loc_rng);

  const std::vector<bench::System> systems = {bench::System::kRoArray,
                                              bench::System::kSpotfi,
                                              bench::System::kArrayTrack};
  bench::BenchRuntime rt(opts);

  std::printf("Figure 7 reproduction: direct-path AoA error CDFs "
              "(%lld locations x 6 APs per band, %lld packets, "
              "%d threads)\n\n",
              static_cast<long long>(opts.locations),
              static_cast<long long>(opts.packets), rt.pool.threads());

  const sim::SnrBand bands[] = {sim::SnrBand::kHigh, sim::SnrBand::kMedium,
                                sim::SnrBand::kLow};
  for (sim::SnrBand band : bands) {
    const auto errs = bench::run_band(tb, clients, band, systems, opts, &rt);
    std::vector<eval::NamedCdf> curves;
    for (std::size_t s = 0; s < systems.size(); ++s) {
      curves.push_back(
          {bench::system_name(systems[s]), eval::Cdf(errs[s].aoa_deg)});
    }
    eval::print_cdf_table(std::cout,
                          std::string("Fig 7, ") + sim::snr_band_name(band),
                          curves, bench::cdf_fractions(), "deg");
    eval::print_cdf_summary(std::cout, curves, "deg");
    std::printf("\n");
  }
  std::printf("paper reference medians: high 6.7/6.62/9.10 deg, medium "
              "7.32/7.40/10.0 deg, low 7.9/12.3/15.2 deg "
              "(ROArray/SpotFi/ArrayTrack)\n");
  return 0;
}
